package recovery

import (
	"encoding/binary"
	"sync"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
)

// Endpoint wraps one fabric node with per-link reliability: every covered
// message carries a per-(destination, kind, session) transport sequence
// number and is buffered until the receiver's cumulative ack releases it —
// sessions sequence independently, so one resident stream's retransmits
// never stall or reorder another's (batch runs ride session 0). Receivers
// deliver covered kinds in sequence order per sender, suppress duplicates,
// NACK gaps as soon as a later message reveals them, and the sender's
// background loop retransmits unacked messages on capped exponential
// backoff (which also repairs tail loss, where no later message exists to
// expose the gap).
//
// The retransmit buffer needs no explicit bound: the pipeline's two-buffer
// credit protocol keeps at most a handful of data messages in flight per
// link, so the buffer is bounded by the credit window it rides on.
//
// Endpoint implements cluster.Net; nodes program against the interface and
// cannot tell (apart from latency) whether they run on the raw fabric or
// the reliable one. Like cluster.Node, the receive methods must be called
// from one goroutine at a time (the node's process); Send and the
// background loop are safe concurrently.
type Endpoint struct {
	node *cluster.Node
	cfg  Config
	rec  *metrics.Recovery

	mu      sync.Mutex
	nextSeq map[linkKey]int64
	unacked map[linkKey]map[int64]*pending
	expect  map[linkKey]int64
	stash   map[linkKey]map[int64]*cluster.Message
	ready   map[cluster.MsgKind][]*cluster.Message

	stop  chan struct{}
	stop1 sync.Once
	done  chan struct{} // loop exited
}

type linkKey struct {
	peer    int // destination (send side) or source (receive side)
	kind    cluster.MsgKind
	session int // resident session the traffic belongs to (0 for batch runs)
}

type pending struct {
	to      int
	msg     *cluster.Message
	sentAt  time.Time
	attempt int
}

// covered reports whether a kind rides the reliability protocol. Data
// messages and protocol acks do; transport control does not (it is
// self-repairing: a lost ack is re-sent on the next delivery or duplicate,
// a lost NACK is covered by the retransmit timer).
func covered(k cluster.MsgKind) bool {
	switch k {
	case cluster.MsgPicture, cluster.MsgSubPicture, cluster.MsgBlocks, cluster.MsgAck:
		return true
	}
	return false
}

// NewEndpoint wraps node. Close must be called when the run completes.
func NewEndpoint(node *cluster.Node, cfg Config, rec *metrics.Recovery) *Endpoint {
	if rec == nil {
		rec = &metrics.Recovery{}
	}
	e := &Endpoint{
		node:    node,
		cfg:     cfg.WithDefaults(),
		rec:     rec,
		nextSeq: map[linkKey]int64{},
		unacked: map[linkKey]map[int64]*pending{},
		expect:  map[linkKey]int64{},
		stash:   map[linkKey]map[int64]*cluster.Message{},
		ready:   map[cluster.MsgKind][]*cluster.Message{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go e.loop()
	return e
}

// Close stops the retransmission loop. Idempotent.
func (e *Endpoint) Close() {
	e.stop1.Do(func() { close(e.stop) })
	<-e.done
}

// ID returns the underlying node id.
func (e *Endpoint) ID() int { return e.node.ID() }

// Done is closed when the fabric aborts.
func (e *Endpoint) Done() <-chan struct{} { return e.node.Done() }

// Send delivers msg reliably (covered kinds) or directly (everything else).
func (e *Endpoint) Send(to int, msg *cluster.Message) {
	if !covered(msg.Kind) {
		e.node.Send(to, msg)
		return
	}
	e.mu.Lock()
	k := linkKey{to, msg.Kind, msg.Session}
	e.nextSeq[k]++
	msg.XSeq = e.nextSeq[k]
	if e.unacked[k] == nil {
		e.unacked[k] = map[int64]*pending{}
	}
	// Retain a private, pre-addressed copy: Node.Send stamps From/To on the
	// message it is handed, and the retransmit loop must be able to read the
	// retained one concurrently.
	cp := *msg
	cp.From = e.node.ID()
	cp.To = to
	e.unacked[k][msg.XSeq] = &pending{to: to, msg: &cp, sentAt: time.Now()}
	e.mu.Unlock()
	// Non-blocking first attempt: the message is already retained above, so a
	// full queue just defers delivery to the NACK/timer path. A blocking send
	// here can wedge the calling process forever behind a peer that finished
	// (or died) and stopped draining its queues — the credit window bounds how
	// much a live link can have in flight, so only dead links ever fill up.
	e.node.TrySend(to, msg)
}

// Recv blocks until an in-order message of the given kind is deliverable.
func (e *Endpoint) Recv(kind cluster.MsgKind) *cluster.Message {
	for {
		if m := e.popReady(kind); m != nil {
			return m
		}
		m := e.node.Recv(kind)
		if m == nil {
			return nil
		}
		if d := e.admit(m); d != nil {
			return d
		}
	}
}

// RecvTimeout is Recv with a deadline; see cluster.Net.
func (e *Endpoint) RecvTimeout(kind cluster.MsgKind, d time.Duration) (*cluster.Message, bool) {
	deadline := time.Now().Add(d)
	for {
		if m := e.popReady(kind); m != nil {
			return m, false
		}
		left := time.Until(deadline)
		if left <= 0 {
			return nil, true
		}
		m, timedOut := e.node.RecvTimeout(kind, left)
		if timedOut {
			return nil, true
		}
		if m == nil {
			return nil, false
		}
		if dm := e.admit(m); dm != nil {
			return dm, false
		}
	}
}

// TryRecv returns a deliverable message of the given kind, if any.
func (e *Endpoint) TryRecv(kind cluster.MsgKind) (*cluster.Message, bool) {
	for {
		if m := e.popReady(kind); m != nil {
			return m, true
		}
		m, ok := e.node.TryRecv(kind)
		if !ok {
			return nil, false
		}
		if d := e.admit(m); d != nil {
			return d, true
		}
	}
}

func (e *Endpoint) popReady(kind cluster.MsgKind) *cluster.Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	q := e.ready[kind]
	if len(q) == 0 {
		return nil
	}
	m := q[0]
	e.ready[kind] = q[1:]
	return m
}

// admit runs the receive-side protocol on one raw delivery. It returns the
// message if it is deliverable now, queueing any stashed successors it
// unblocks; it returns nil when the message was a duplicate (dropped) or
// out of order (stashed, gaps NACKed).
func (e *Endpoint) admit(m *cluster.Message) *cluster.Message {
	if !covered(m.Kind) || m.XSeq == 0 {
		return m // unsequenced traffic passes through
	}
	k := linkKey{m.From, m.Kind, m.Session}
	var acks, nacks []int64
	e.mu.Lock()
	if e.expect[k] == 0 {
		e.expect[k] = 1
	}
	var out *cluster.Message
	switch {
	case m.XSeq == e.expect[k]:
		out = m
		e.expect[k]++
		// Pull any stashed successors into the ready queue.
		for {
			s := e.stash[k][e.expect[k]]
			if s == nil {
				break
			}
			delete(e.stash[k], e.expect[k])
			e.ready[m.Kind] = append(e.ready[m.Kind], s)
			e.expect[k]++
		}
		acks = append(acks, e.expect[k]-1)
	case m.XSeq > e.expect[k]:
		if e.stash[k] == nil {
			e.stash[k] = map[int64]*cluster.Message{}
		}
		if _, dup := e.stash[k][m.XSeq]; dup {
			e.rec.AddDuplicate()
		} else {
			e.stash[k][m.XSeq] = m
			// NACK every hole below the newcomer so the sender retransmits
			// without waiting out its timer.
			for s := e.expect[k]; s < m.XSeq; s++ {
				if _, have := e.stash[k][s]; !have {
					nacks = append(nacks, s)
				}
			}
		}
	default: // duplicate of something already delivered
		e.rec.AddDuplicate()
		acks = append(acks, e.expect[k]-1) // re-ack so the sender stops
	}
	e.mu.Unlock()

	for _, seq := range acks {
		e.sendXport(m.From, xportAck, m.Kind, m.Session, seq)
	}
	for _, seq := range nacks {
		e.rec.AddNack()
		e.sendXport(m.From, xportNack, m.Kind, m.Session, seq)
	}
	return out
}

// --- transport control wire format -------------------------------------

const (
	xportAck  = 0 // Seq is a cumulative ack: everything <= Seq arrived
	xportNack = 1 // Seq names one missing message to retransmit now
)

func (e *Endpoint) sendXport(to int, typ byte, kind cluster.MsgKind, session int, seq int64) {
	p := make([]byte, 14)
	p[0] = typ
	p[1] = byte(kind)
	binary.LittleEndian.PutUint64(p[2:], uint64(seq))
	binary.LittleEndian.PutUint32(p[10:], uint32(session))
	// Non-blocking: control traffic is self-repairing (a lost ack is re-sent
	// on the next duplicate, a lost NACK by the retransmit timer), and this
	// runs in the receiving process — it must not stall behind a peer that no
	// longer drains its control queue.
	e.node.TrySend(to, &cluster.Message{Kind: cluster.MsgXport, Payload: p})
}

func parseXport(m *cluster.Message) (typ byte, kind cluster.MsgKind, session int, seq int64, ok bool) {
	if len(m.Payload) != 14 {
		return 0, 0, 0, 0, false
	}
	return m.Payload[0], cluster.MsgKind(m.Payload[1]),
		int(int32(binary.LittleEndian.Uint32(m.Payload[10:]))),
		int64(binary.LittleEndian.Uint64(m.Payload[2:])), true
}

// --- sender background loop ---------------------------------------------

func (e *Endpoint) loop() {
	defer close(e.done)
	tick := time.NewTicker(e.cfg.RetryInterval)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-e.node.Done():
			return
		case m := <-e.node.Queue(cluster.MsgXport):
			e.handleXport(m)
		case <-tick.C:
			e.retransmitDue()
		}
	}
}

func (e *Endpoint) handleXport(m *cluster.Message) {
	typ, kind, session, seq, ok := parseXport(m)
	if !ok {
		return
	}
	k := linkKey{m.From, kind, session}
	var resend *cluster.Message
	e.mu.Lock()
	switch typ {
	case xportAck:
		for s := range e.unacked[k] {
			if s <= seq {
				delete(e.unacked[k], s)
			}
		}
	case xportNack:
		if p := e.unacked[k][seq]; p != nil {
			p.attempt++
			p.sentAt = time.Now()
			resend = retransmitCopy(p.msg)
		}
	}
	e.mu.Unlock()
	if resend != nil && e.node.TrySend(m.From, resend) {
		e.rec.AddRetransmit()
	}
}

// retransmitDue re-sends every unacked message whose backoff has elapsed.
func (e *Endpoint) retransmitDue() {
	now := time.Now()
	type due struct {
		to  int
		msg *cluster.Message
	}
	var out []due
	e.mu.Lock()
	for _, link := range e.unacked {
		for _, p := range link {
			if now.Sub(p.sentAt) < e.backoff(p.attempt) {
				continue
			}
			p.attempt++
			p.sentAt = now
			out = append(out, due{p.to, retransmitCopy(p.msg)})
		}
	}
	e.mu.Unlock()
	for _, d := range out {
		// Non-blocking: a peer that has finished (or died) stops draining its
		// queues, and a blocking send there would wedge this loop — and with
		// it Close. A full queue just leaves the message pending for the next
		// tick.
		if e.node.TrySend(d.to, d.msg) {
			e.rec.AddRetransmit()
		}
	}
}

// backoff returns the retransmission delay after attempt prior tries:
// RetryInterval doubling each attempt, capped at MaxBackoff.
func (e *Endpoint) backoff(attempt int) time.Duration {
	d := e.cfg.RetryInterval
	for i := 0; i < attempt && d < e.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > e.cfg.MaxBackoff {
		d = e.cfg.MaxBackoff
	}
	return d
}

func retransmitCopy(m *cluster.Message) *cluster.Message {
	c := *m
	c.Flags |= cluster.FlagRetransmit
	return &c
}
