// Quickstart: encode a short synthetic clip with the built-in MPEG-2
// encoder, decode it serially, then decode it on a simulated 1-2-(2,2)
// tiled display wall and verify the two outputs are bit-exact.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tiledwall/internal/encoder"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/system"
	"tiledwall/internal/video"
)

func main() {
	// 1. Render 24 frames of a synthetic scene and encode them.
	const w, h, frames = 352, 288, 24
	src := video.NewSource(video.SceneFilm, w, h, 42)
	enc, err := encoder.New(encoder.Config{
		Width: w, Height: h,
		GOPSize: 12, BSpacing: 3,
		TargetBPP: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if err := enc.Push(src.Frame(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		log.Fatal(err)
	}
	stream := enc.Bytes()
	fmt.Printf("encoded %d frames: %d bytes (%.3f bit/pixel)\n",
		frames, len(stream), float64(len(stream)*8)/float64(frames*w*h))

	// 2. Serial reference decode.
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		log.Fatal(err)
	}
	psnr, _ := video.PSNR(src.Frame(0), ref[0].Buf)
	fmt.Printf("serial decode: %d pictures, first-frame PSNR %.1f dB\n", len(ref), psnr)

	// 3. Parallel decode on a 1-2-(2,2) hierarchy: one root splitter, two
	// second-level splitters, four tile decoders — 7 simulated PCs.
	res, err := system.Run(stream, system.Config{K: 2, M: 2, N: 2, CollectFrames: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel decode on %d PCs: %.1f fps, %.1f Mpixel/s\n",
		res.Config.NumNodes(), res.Throughput.FPS(), res.Throughput.PixelRate())

	// 4. Verify bit-exactness.
	for i := range ref {
		if !video.Equal(ref[i].Buf, res.Frames[i]) {
			log.Fatalf("frame %d differs between serial and parallel decoders", i)
		}
	}
	fmt.Printf("verified: all %d frames bit-exact between serial and parallel paths\n", len(ref))
}
