package mpeg2

import "math"

// Fast fixed-point 8x8 inverse DCT after Wang (the classic row/column
// butterfly used by the MPEG Software Simulation Group decoder), operating
// in place on a raster-order int32 block. Accuracy comfortably passes the
// IEEE 1180-style test in idct_test.go against the double-precision
// reference below.
const (
	idctW1 = 2841 // 2048*sqrt(2)*cos(1*pi/16)
	idctW2 = 2676 // 2048*sqrt(2)*cos(2*pi/16)
	idctW3 = 2408 // 2048*sqrt(2)*cos(3*pi/16)
	idctW5 = 1609 // 2048*sqrt(2)*cos(5*pi/16)
	idctW6 = 1108 // 2048*sqrt(2)*cos(6*pi/16)
	idctW7 = 565  // 2048*sqrt(2)*cos(7*pi/16)
)

func idctRow(b []int32) {
	x1 := b[4] << 11
	x2 := b[6]
	x3 := b[2]
	x4 := b[1]
	x5 := b[7]
	x6 := b[5]
	x7 := b[3]
	// Shortcut: rows with only a DC term are common after quantisation.
	if x1|x2|x3|x4|x5|x6|x7 == 0 {
		v := b[0] << 3
		for i := 0; i < 8; i++ {
			b[i] = v
		}
		return
	}
	x0 := (b[0] << 11) + 128 // +128 rounds at the final >>8

	// First stage.
	x8 := idctW7 * (x4 + x5)
	x4 = x8 + (idctW1-idctW7)*x4
	x5 = x8 - (idctW1+idctW7)*x5
	x8 = idctW3 * (x6 + x7)
	x6 = x8 - (idctW3-idctW5)*x6
	x7 = x8 - (idctW3+idctW5)*x7

	// Second stage.
	x8 = x0 + x1
	x0 -= x1
	x1 = idctW6 * (x3 + x2)
	x2 = x1 - (idctW2+idctW6)*x2
	x3 = x1 + (idctW2-idctW6)*x3
	x1 = x4 + x6
	x4 -= x6
	x6 = x5 + x7
	x5 -= x7

	// Third stage.
	x7 = x8 + x3
	x8 -= x3
	x3 = x0 + x2
	x0 -= x2
	x2 = (181*(x4+x5) + 128) >> 8
	x4 = (181*(x4-x5) + 128) >> 8

	// Fourth stage.
	b[0] = (x7 + x1) >> 8
	b[1] = (x3 + x2) >> 8
	b[2] = (x0 + x4) >> 8
	b[3] = (x8 + x6) >> 8
	b[4] = (x8 - x6) >> 8
	b[5] = (x0 - x4) >> 8
	b[6] = (x3 - x2) >> 8
	b[7] = (x7 - x1) >> 8
}

func idctCol(b []int32) {
	x1 := b[8*4] << 8
	x2 := b[8*6]
	x3 := b[8*2]
	x4 := b[8*1]
	x5 := b[8*7]
	x6 := b[8*5]
	x7 := b[8*3]
	if x1|x2|x3|x4|x5|x6|x7 == 0 {
		v := (b[0] + 32) >> 6
		for i := 0; i < 8; i++ {
			b[8*i] = v
		}
		return
	}
	x0 := (b[8*0] << 8) + 8192

	x8 := idctW7*(x4+x5) + 4
	x4 = (x8 + (idctW1-idctW7)*x4) >> 3
	x5 = (x8 - (idctW1+idctW7)*x5) >> 3
	x8 = idctW3*(x6+x7) + 4
	x6 = (x8 - (idctW3-idctW5)*x6) >> 3
	x7 = (x8 - (idctW3+idctW5)*x7) >> 3

	x8 = x0 + x1
	x0 -= x1
	x1 = idctW6*(x3+x2) + 4
	x2 = (x1 - (idctW2+idctW6)*x2) >> 3
	x3 = (x1 + (idctW2-idctW6)*x3) >> 3
	x1 = x4 + x6
	x4 -= x6
	x6 = x5 + x7
	x5 -= x7

	x7 = x8 + x3
	x8 -= x3
	x3 = x0 + x2
	x0 -= x2
	x2 = (181*(x4+x5) + 128) >> 8
	x4 = (181*(x4-x5) + 128) >> 8

	b[8*0] = (x7 + x1) >> 14
	b[8*1] = (x3 + x2) >> 14
	b[8*2] = (x0 + x4) >> 14
	b[8*3] = (x8 + x6) >> 14
	b[8*4] = (x8 - x6) >> 14
	b[8*5] = (x0 - x4) >> 14
	b[8*6] = (x3 - x2) >> 14
	b[8*7] = (x7 - x1) >> 14
}

// IDCT computes the 8x8 inverse DCT of block in place (raster order).
func IDCT(block *[64]int32) {
	for i := 0; i < 8; i++ {
		idctRow(block[8*i : 8*i+8])
	}
	for i := 0; i < 8; i++ {
		idctCol(block[i:])
	}
}

// IDCTRef is the double-precision reference inverse DCT, used by tests and
// available for bit-accuracy experiments.
func IDCTRef(block *[64]int32) {
	var tmp [64]float64
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			var s float64
			for x := 0; x < 8; x++ {
				for y := 0; y < 8; y++ {
					cu := 1.0
					if x == 0 {
						cu = math.Sqrt2 / 2
					}
					cv := 1.0
					if y == 0 {
						cv = math.Sqrt2 / 2
					}
					s += cu * cv * float64(block[y*8+x]) *
						math.Cos(float64(2*u+1)*float64(x)*math.Pi/16) *
						math.Cos(float64(2*v+1)*float64(y)*math.Pi/16)
				}
			}
			tmp[v*8+u] = s / 4
		}
	}
	for i, f := range tmp {
		block[i] = int32(math.Round(f))
	}
}

// FDCTRef is the double-precision forward DCT (raster order, in place),
// used by the encoder and by transform round-trip tests.
func FDCTRef(block *[64]int32) {
	var tmp [64]float64
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			var s float64
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					s += float64(block[y*8+x]) *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/16)
				}
			}
			cu := 1.0
			if u == 0 {
				cu = math.Sqrt2 / 2
			}
			cv := 1.0
			if v == 0 {
				cv = math.Sqrt2 / 2
			}
			tmp[v*8+u] = s * cu * cv / 4
		}
	}
	for i, f := range tmp {
		block[i] = int32(math.Round(f))
	}
}
