module tiledwall

go 1.22
