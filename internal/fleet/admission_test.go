package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tiledwall/internal/service"
)

// oneSlotFleet builds a fleet with a single one-session wall: every further
// open queues, which is what the admission edge tests need.
func oneSlotFleet(t *testing.T, cfg Config) (*Fleet, *Session) {
	t.Helper()
	cfg.Walls = []service.Config{{K: 0, M: 1, N: 1, MaxSessions: 1}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	hold, err := f.Open("hold", OpenOptions{})
	if err != nil {
		t.Fatalf("hold open: %v", err)
	}
	return f, hold
}

func waitQueued(t *testing.T, f *Fleet, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, f.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// checkShedError asserts the full typed contract of a shed open: both
// sentinels match through errors.Is, and the wrapped capacity hint is sane.
func checkShedError(t *testing.T, err error, wantFull bool) *AdmissionTimeoutError {
	t.Helper()
	if err == nil {
		t.Fatal("shed open returned nil error")
	}
	if !errors.Is(err, ErrAdmissionTimeout) {
		t.Fatalf("shed error %v does not match ErrAdmissionTimeout", err)
	}
	if !errors.Is(err, service.ErrTooManySessions) {
		t.Fatalf("shed error %v does not match service.ErrTooManySessions", err)
	}
	var ate *AdmissionTimeoutError
	if !errors.As(err, &ate) {
		t.Fatalf("shed error %v is not an *AdmissionTimeoutError", err)
	}
	if ate.QueueFull != wantFull {
		t.Fatalf("QueueFull = %v, want %v (%v)", ate.QueueFull, wantFull, err)
	}
	if ate.Busy == nil || ate.Busy.RetryAfter <= 0 {
		t.Fatalf("shed error carries no retry hint: %v", err)
	}
	return ate
}

// TestAdmissionDeadlineShedsFIFO holds the fleet at capacity and queues three
// opens with staggered deadlines plus one patient open. The three shed in
// deadline order, each with the typed error; the patient one is granted the
// moment the held session closes — shedding never disturbs its queue slot.
func TestAdmissionDeadlineShedsFIFO(t *testing.T) {
	f, hold := oneSlotFleet(t, Config{})

	type shed struct {
		idx int
		err error
	}
	sheds := make(chan shed, 3)
	deadlines := []time.Duration{150 * time.Millisecond, 300 * time.Millisecond, 450 * time.Millisecond}
	var wg sync.WaitGroup
	for i, d := range deadlines {
		i, d := i, d
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := f.Open(fmt.Sprintf("shed-%d", i), OpenOptions{Deadline: d})
			sheds <- shed{i, err}
		}()
		waitQueued(t, f, i+1) // enqueue in a known order
	}
	granted := make(chan error, 1)
	go func() {
		s, err := f.Open("patient", OpenOptions{Deadline: 30 * time.Second})
		if err == nil {
			s.Close()
		}
		granted <- err
	}()
	waitQueued(t, f, 4)

	for want := 0; want < 3; want++ {
		sh := <-sheds
		if sh.idx != want {
			t.Fatalf("shed order: got waiter %d, want %d (FIFO by deadline)", sh.idx, want)
		}
		ate := checkShedError(t, sh.err, false)
		if ate.Waited < deadlines[sh.idx]/2 {
			t.Fatalf("waiter %d shed after only %v (deadline %v)", sh.idx, ate.Waited, deadlines[sh.idx])
		}
	}
	wg.Wait()
	hold.Close()
	if err := <-granted; err != nil {
		t.Fatalf("patient waiter was not granted after release: %v", err)
	}
	if st := f.Stats(); st.Shed != 3 || st.Queued != 0 {
		t.Fatalf("stats after sheds: %+v, want Shed=3 Queued=0", st)
	}
}

// TestAdmissionQueueFull pins the fast-fail path: an open arriving at a full
// queue sheds immediately with QueueFull set, without waiting its deadline.
func TestAdmissionQueueFull(t *testing.T) {
	f, hold := oneSlotFleet(t, Config{MaxQueue: 2})

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			s, err := f.Open(fmt.Sprintf("queued-%d", i), OpenOptions{Deadline: 30 * time.Second})
			if err == nil {
				s.Close()
			}
			results <- err
		}()
		waitQueued(t, f, i+1)
	}
	start := time.Now()
	_, err := f.Open("overflow", OpenOptions{Deadline: 30 * time.Second})
	checkShedError(t, err, true)
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("queue-full open waited %v, want immediate shed", waited)
	}
	hold.Close()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued open %d: %v", i, err)
		}
	}
}

// TestPriorityNoStarvation drives a sustained overload — capacity one, twelve
// interactive and four bulk opens queued — and releases the slot so grants
// cascade one at a time. The weighted credits must interleave 4:2:1, so bulk
// progresses throughout instead of waiting out the whole interactive queue.
func TestPriorityNoStarvation(t *testing.T) {
	f, hold := oneSlotFleet(t, Config{MaxQueue: 32})

	const nInteractive, nBulk = 12, 4
	var mu sync.Mutex
	var order []Priority
	var wg sync.WaitGroup
	spawn := func(name string, p Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := f.Open(name, OpenOptions{Priority: p, Deadline: 30 * time.Second})
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			// Capacity is one: the next grant happens only after this Close,
			// so the append order is exactly the grant order.
			mu.Lock()
			order = append(order, p)
			mu.Unlock()
			s.Close()
		}()
	}
	for i := 0; i < nInteractive; i++ {
		spawn(fmt.Sprintf("i-%d", i), Interactive)
		waitQueued(t, f, i+1)
	}
	for i := 0; i < nBulk; i++ {
		spawn(fmt.Sprintf("b-%d", i), Bulk)
		waitQueued(t, f, nInteractive+i+1)
	}
	hold.Close()
	wg.Wait()

	if len(order) != nInteractive+nBulk {
		t.Fatalf("granted %d of %d opens", len(order), nInteractive+nBulk)
	}
	var bulkAt []int
	for i, p := range order {
		if p == Bulk {
			bulkAt = append(bulkAt, i + 1)
		}
	}
	t.Logf("grant order: %v (bulk at %v)", order, bulkAt)
	if len(bulkAt) != nBulk {
		t.Fatalf("granted %d bulk opens, want %d", len(bulkAt), nBulk)
	}
	// The 4:2:1 credit cycle admits at least one bulk per five grants while
	// interactive pressure lasts: position j+1 of bulk must come by grant
	// 5*(j+1)+1. A starved bulk class would sit at positions 13..16.
	for j, pos := range bulkAt {
		if pos > 5*(j+1)+1 {
			t.Fatalf("bulk grant %d at position %d: starved past its credit cycle", j, pos)
		}
	}
	if bulkAt[0] > 6 {
		t.Fatalf("first bulk grant at position %d, want within the first credit cycle", bulkAt[0])
	}
}

// TestRetryAfterEWMA is the table-driven check that the retry hint's EWMA
// stays monotone-sane under bursty closes: each fold lands between the
// previous estimate and the observation, a burst of short sessions walks the
// estimate down monotonically (and vice versa), and repeated folds converge.
func TestRetryAfterEWMA(t *testing.T) {
	cases := []struct {
		name string
		prev time.Duration
		d    time.Duration
		want time.Duration
	}{
		{"seed from first observation", 0, 80 * time.Millisecond, 80 * time.Millisecond},
		{"steady state is a fixpoint", 100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond},
		{"quarter-weight down", 100 * time.Millisecond, 20 * time.Millisecond, 80 * time.Millisecond},
		{"quarter-weight up", 20 * time.Millisecond, 100 * time.Millisecond, 40 * time.Millisecond},
	}
	for _, c := range cases {
		if got := foldEWMA(c.prev, c.d); got != c.want {
			t.Errorf("%s: foldEWMA(%v, %v) = %v, want %v", c.name, c.prev, c.d, got, c.want)
		}
	}

	// Boundedness: the estimate never overshoots past the observation or
	// regresses behind both inputs, whatever the burst looks like.
	bursts := [][]time.Duration{
		{500 * time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond},
		{10 * time.Millisecond, time.Second, time.Second, 5 * time.Millisecond},
	}
	for _, burst := range bursts {
		prev := time.Duration(0)
		for _, d := range burst {
			got := foldEWMA(prev, d)
			lo, hi := prev, d
			if prev == 0 {
				lo = d
			}
			if lo > hi {
				lo, hi = hi, lo
			}
			if got < lo || got > hi {
				t.Fatalf("foldEWMA(%v, %v) = %v escapes [%v, %v]", prev, d, got, lo, hi)
			}
			prev = got
		}
	}

	// Monotone descent under a burst of fast closes after a slow regime.
	prev := 800 * time.Millisecond
	for i := 0; i < 20; i++ {
		next := foldEWMA(prev, 5*time.Millisecond)
		if next > prev {
			t.Fatalf("EWMA rose from %v to %v on a fast close", prev, next)
		}
		prev = next
	}
	if prev > 10*time.Millisecond {
		t.Fatalf("EWMA failed to converge toward the burst: still %v", prev)
	}

	// The shed-error hint floors: 100ms with no history, 10ms otherwise.
	f := &Fleet{slots: []*wallSlot{{cfg: service.Config{MaxSessions: 1}}}}
	if got := f.admissionTimeoutLocked(0, false).Busy.RetryAfter; got != 100*time.Millisecond {
		t.Fatalf("no-history retry hint = %v, want 100ms", got)
	}
	f.avgSession = time.Millisecond
	if got := f.admissionTimeoutLocked(0, false).Busy.RetryAfter; got != 10*time.Millisecond {
		t.Fatalf("fast-session retry hint = %v, want the 10ms floor", got)
	}
	f.avgSession = 300 * time.Millisecond
	if got := f.admissionTimeoutLocked(0, false).Busy.RetryAfter; got != 300*time.Millisecond {
		t.Fatalf("steady retry hint = %v, want the EWMA itself", got)
	}
}

// TestTenantBudgets pins per-tenant QoS: session caps and in-flight-picture
// reservations hold across walls, and an over-budget tenant queues while
// other tenants sail through.
func TestTenantBudgets(t *testing.T) {
	f, err := New(Config{
		Walls: []service.Config{
			{K: 0, M: 1, N: 1, MaxSessions: 4, MaxInFlightPictures: 8},
			{K: 0, M: 1, N: 1, MaxSessions: 4, MaxInFlightPictures: 8},
		},
		Tenants: map[string]Tenant{
			"capped":   {MaxSessions: 2},
			"reserved": {MaxInFlightPictures: 16}, // two 8-picture reservations
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for _, tenant := range []string{"capped", "reserved"} {
		var held []*Session
		for i := 0; i < 2; i++ {
			s, err := f.Open(fmt.Sprintf("%s-%d", tenant, i), OpenOptions{Tenant: tenant})
			if err != nil {
				t.Fatalf("%s open %d: %v", tenant, i, err)
			}
			held = append(held, s)
		}
		// The third open exceeds the tenant budget: it must queue (and shed
		// on its deadline) even though both walls have free slots.
		_, err := f.Open(tenant+"-over", OpenOptions{Tenant: tenant, Deadline: 50 * time.Millisecond})
		checkShedError(t, err, false)
		// An unconstrained tenant is untouched by the budget.
		s, err := f.Open("free-"+tenant, OpenOptions{})
		if err != nil {
			t.Fatalf("unconstrained open during %s overload: %v", tenant, err)
		}
		s.Close()
		for _, s := range held {
			s.Close()
		}
		// Budget released: the tenant admits again.
		s, err = f.Open(tenant+"-again", OpenOptions{Tenant: tenant})
		if err != nil {
			t.Fatalf("%s open after release: %v", tenant, err)
		}
		s.Close()
	}
}
