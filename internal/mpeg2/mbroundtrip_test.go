package mpeg2

import (
	"math/rand"
	"testing"

	"tiledwall/internal/bits"
)

func testSeq(w, h int) *SequenceHeader {
	s := &SequenceHeader{
		Width: w, Height: h,
		AspectRatio:   1,
		FrameRateCode: 5,
		BitRate:       10000,
		VBVBufferSize: 112,
		ChromaFormat:  1,
		Progressive:   true,
		IntraQ:        DefaultIntraQuantMatrix,
		NonIntraQ:     DefaultNonIntraQuantMatrix,
	}
	return s
}

func testPic(t PictureType, intraVLC, altScan, qType bool) *PictureHeader {
	p := &PictureHeader{
		PicType:          t,
		VBVDelay:         0xFFFF,
		FCode:            [2][2]int{{15, 15}, {15, 15}},
		PictureStructure: 3,
		FramePredDCT:     true,
		QScaleType:       qType,
		IntraVLCFormat:   intraVLC,
		AlternateScan:    altScan,
		ProgressiveFrame: true,
		TopFieldFirst:    false,
	}
	if t == PictureP || t == PictureB {
		p.FCode[0][0], p.FCode[0][1] = 3, 3
	}
	if t == PictureB {
		p.FCode[1][0], p.FCode[1][1] = 3, 3
	}
	return p
}

// randomMBCode generates a plausible coded macroblock for the picture type.
func randomMBCode(rng *rand.Rand, pic *PictureHeader, addr, skipBefore int, prevIntra bool) *MBCode {
	mb := &MBCode{Addr: addr, SkipBefore: skipBefore, QuantCode: rng.Intn(31) + 1}
	levels := func(n int, maxRun int) *[64]int32 {
		var blk [64]int32
		pos := 1
		for k := 0; k < n && pos < 64; k++ {
			pos += rng.Intn(maxRun)
			if pos >= 64 {
				break
			}
			lv := int32(rng.Intn(80) + 1)
			if rng.Intn(2) == 0 {
				lv = -lv
			}
			blk[ZigZagScan[pos]] = lv
			pos++
		}
		return &blk
	}
	mv := func() [2]int32 {
		// f_code 3 range: [-64, 63] half samples.
		return [2]int32{int32(rng.Intn(128) - 64), int32(rng.Intn(128) - 64)}
	}

	intra := rng.Intn(4) == 0 || pic.PicType == PictureI
	if intra {
		mb.Flags = MBIntra
		var blocks [6][64]int32
		for i := 0; i < 6; i++ {
			b := levels(rng.Intn(6), 8)
			b[0] = int32(rng.Intn(255)) // quantised DC (precision 0)
			blocks[i] = *b
		}
		mb.Blocks = &blocks
		return mb
	}

	var blocks [6][64]int32
	cbp := 0
	for i := 0; i < 6; i++ {
		if rng.Intn(2) == 0 {
			b := levels(rng.Intn(5)+1, 10)
			if hasNonzero(b) {
				blocks[i] = *b
				cbp |= 1 << uint(5-i)
			}
		}
	}
	mb.CBP = cbp
	mb.Blocks = &blocks
	if cbp != 0 {
		mb.Flags |= MBPattern
	}
	switch pic.PicType {
	case PictureP:
		if rng.Intn(3) > 0 {
			mb.Flags |= MBMotionFwd
			mb.MVFwd = mv()
		} else if cbp == 0 {
			// "MC not coded" with a zero delta is still legal; give it a
			// vector so the macroblock carries information.
			mb.Flags |= MBMotionFwd
			mb.MVFwd = mv()
		}
	case PictureB:
		switch rng.Intn(3) {
		case 0:
			mb.Flags |= MBMotionFwd
			mb.MVFwd = mv()
		case 1:
			mb.Flags |= MBMotionBwd
			mb.MVBwd = mv()
		default:
			mb.Flags |= MBMotionFwd | MBMotionBwd
			mb.MVFwd, mb.MVBwd = mv(), mv()
		}
		if cbp == 0 && mb.Flags == MBMotionFwd|MBMotionBwd && !prevIntra {
			// This combination would be indistinguishable from a skip if it
			// matched the previous macroblock; it is still a legal coded MB.
		}
	}
	return mb
}

func hasNonzero(b *[64]int32) bool {
	for i := 1; i < 64; i++ {
		if b[i] != 0 {
			return true
		}
	}
	return false
}

// TestMBWriteParseRoundTrip writes random slices and parses them back,
// comparing addresses, modes, vectors and (parse-only) bit boundaries.
func TestMBWriteParseRoundTrip(t *testing.T) {
	seq := testSeq(64, 48) // 4x3 macroblocks
	for _, picType := range []PictureType{PictureI, PictureP, PictureB} {
		for _, intraVLC := range []bool{false, true} {
			for _, altScan := range []bool{false, true} {
				pic := testPic(picType, intraVLC, altScan, false)
				ctx, err := NewPictureContext(seq, pic)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(picType)*100 + b2i(intraVLC)*10 + b2i(altScan)))
				for trial := 0; trial < 50; trial++ {
					roundTripSlice(t, ctx, rng)
				}
			}
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func roundTripSlice(t *testing.T, ctx *PictureContext, rng *rand.Rand) {
	t.Helper()
	row := rng.Intn(ctx.MBH)
	w := bits.NewWriter(256)
	sw := NewSliceWriter(ctx, w, row, rng.Intn(31)+1)

	var written []*MBCode
	addr := row * ctx.MBW
	prevIntra := true
	for addr < (row+1)*ctx.MBW {
		skip := 0
		if len(written) > 0 && ctx.Pic.PicType != PictureI && addr < (row+1)*ctx.MBW-1 {
			skip = rng.Intn(3)
			if addr+skip >= (row+1)*ctx.MBW-1 {
				skip = 0
			}
		}
		mb := randomMBCode(rng, ctx.Pic, addr+skip, skip, prevIntra)
		if err := sw.WriteMB(mb); err != nil {
			t.Fatalf("WriteMB addr %d: %v", mb.Addr, err)
		}
		prevIntra = mb.Flags&MBIntra != 0
		written = append(written, mb)
		addr += skip + 1
		if rng.Intn(4) == 0 {
			break
		}
	}
	// Terminate like a real slice: byte-align with zeros; the parser detects
	// the run of 23 zero bits.
	w.AlignZero()
	w.WriteBytes([]byte{0, 0, 1}) // next start code prefix

	data := w.Bytes()
	r := bits.NewReader(data)
	r.Skip(0)
	// Skip the slice header the writer emitted: 24-bit prefix + 8-bit code
	// (+3 bits if tall) + 5-bit quant + 1 extra bit.
	r.Skip(24 + 8)
	if ctx.Seq.Height > 2800 {
		r.Skip(3)
	}
	sd, err := newSliceDecoderForTest(ctx, r, row)
	if err != nil {
		t.Fatal(err)
	}
	var mb Macroblock
	for i, want := range written {
		ok, err := sd.Next(&mb)
		if err != nil {
			t.Fatalf("Next #%d: %v", i, err)
		}
		if !ok {
			t.Fatalf("slice ended early at #%d of %d", i, len(written))
		}
		if mb.Addr != want.Addr {
			t.Fatalf("#%d addr = %d, want %d", i, mb.Addr, want.Addr)
		}
		if mb.SkippedBefore != want.SkipBefore {
			t.Fatalf("#%d skipped = %d, want %d", i, mb.SkippedBefore, want.SkipBefore)
		}
		wantFlags := want.Flags
		if mb.Flags&MBQuant != 0 {
			wantFlags |= MBQuant
		}
		if intra := want.Flags&MBIntra != 0; intra != mb.Intra() {
			t.Fatalf("#%d intra = %v", i, mb.Intra())
		}
		if mb.Flags&^(MBQuant) != wantFlags&^(MBQuant) && ctx.Pic.PicType != PictureP {
			t.Fatalf("#%d flags = %#x, want %#x", i, mb.Flags, wantFlags)
		}
		if want.Flags&MBMotionFwd != 0 && mb.MVFwd != want.MVFwd {
			t.Fatalf("#%d fwd mv = %v, want %v", i, mb.MVFwd, want.MVFwd)
		}
		if want.Flags&MBMotionBwd != 0 && mb.MVBwd != want.MVBwd {
			t.Fatalf("#%d bwd mv = %v, want %v", i, mb.MVBwd, want.MVBwd)
		}
		if want.Flags&MBIntra == 0 && mb.CBP != want.CBP {
			t.Fatalf("#%d cbp = %d, want %d", i, mb.CBP, want.CBP)
		}
		// Compare coefficient levels by re-quantising: the decoder returns
		// dequantised values, so instead compare against a dequantised copy.
		compareBlocks(t, ctx, i, want, &mb)
	}
	if ok, err := sd.Next(&mb); err != nil || ok {
		t.Fatalf("expected clean slice end, got ok=%v err=%v", ok, err)
	}
}

func newSliceDecoderForTest(ctx *PictureContext, r *bits.Reader, row int) (*SliceDecoder, error) {
	return NewSliceDecoder(ctx, r, row+1)
}

func compareBlocks(t *testing.T, ctx *PictureContext, i int, want *MBCode, got *Macroblock) {
	t.Helper()
	if got.Blocks == nil {
		t.Fatalf("#%d missing blocks", i)
	}
	qs := QuantiserScale(got.QuantCode, ctx.Pic.QScaleType)
	for b := 0; b < 6; b++ {
		coded := got.CBP&(1<<uint(5-b)) != 0
		if !coded {
			continue
		}
		ref := want.Blocks[b]
		if want.Flags&MBIntra != 0 {
			DequantIntra(&ref, &ctx.Seq.IntraQ, qs, ctx.Pic.DCShift())
		} else {
			DequantNonIntra(&ref, &ctx.Seq.NonIntraQ, qs)
		}
		if ref != got.Blocks[b] {
			t.Fatalf("#%d block %d coefficients mismatch\nwant %v\ngot  %v", i, b, ref, got.Blocks[b])
		}
	}
}
