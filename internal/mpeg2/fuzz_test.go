package mpeg2_test

import (
	"errors"
	"sync"
	"testing"

	"tiledwall/internal/bits"
	"tiledwall/internal/encoder"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/video"
)

// fuzzStream lazily encodes one small deterministic stream shared by the
// fuzz targets as seed material.
var fuzzStream = sync.OnceValue(func() []byte {
	cfg := encoder.Config{Width: 64, Height: 48, GOPSize: 4, BSpacing: 2, InitialQScale: 6}
	src := video.NewSource(video.SceneFilm, 64, 48, 7)
	e, err := encoder.New(cfg)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.Push(src.Frame(i)); err != nil {
			panic(err)
		}
	}
	if err := e.Flush(); err != nil {
		panic(err)
	}
	return e.Bytes()
})

// requireTyped asserts every decode failure is one of the package's typed
// sentinels — the contract the conformance harness leans on.
func requireTyped(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if !errors.Is(err, mpeg2.ErrCorruptStream) && !errors.Is(err, mpeg2.ErrUnsupported) {
		t.Fatalf("error is neither ErrCorruptStream nor ErrUnsupported: %v", err)
	}
}

// FuzzSequenceHeader exercises stream indexing and sequence/extension header
// parsing on arbitrary bytes.
func FuzzSequenceHeader(f *testing.F) {
	s := fuzzStream()
	f.Add(s[:min(64, len(s))])
	f.Add([]byte{0x00, 0x00, 0x01, 0xb3, 0x04, 0x00, 0x30, 0x12, 0x34, 0x56, 0x78, 0x9a})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := mpeg2.ParseStream(data)
		requireTyped(t, err)
		if err == nil && (st.Seq.MBWidth() <= 0 || st.Seq.MBHeight() <= 0) {
			t.Fatalf("accepted sequence header with empty picture %dx%d", st.Seq.Width, st.Seq.Height)
		}
	})
}

// FuzzPictureHeader exercises picture header + coding extension parsing up
// to the first slice.
func FuzzPictureHeader(f *testing.F) {
	st, err := mpeg2.ParseStream(fuzzStream())
	if err != nil {
		f.Fatal(err)
	}
	for _, unit := range st.Pictures[:2] {
		f.Add(unit)
	}
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x00, 0x08, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, err := mpeg2.ParsePictureUnit(data)
		requireTyped(t, err)
	})
}

// FuzzVLC decodes one slice of arbitrary bytes under every VLC table
// configuration: the first byte selects picture type, quantiser scale type,
// intra VLC table (B-14 vs B-15), alternate scan and DC precision, so all
// macroblock-type, CBP, motion and DCT coefficient tables get hit. The slice
// decoder must terminate with a typed error or a complete slice — never
// panic, never loop.
func FuzzVLC(f *testing.F) {
	st, err := mpeg2.ParseStream(fuzzStream())
	if err != nil {
		f.Fatal(err)
	}
	// Seed with real slice payloads (bytes past the first slice start code)
	// under a few table selectors.
	for i, unit := range st.Pictures[:3] {
		if off := sliceOffset(unit); off > 0 {
			f.Add([]byte{byte(i)}, unit[off:])
		}
	}
	f.Add([]byte{0x05}, []byte{0x0a, 0xff, 0x00, 0x12})
	f.Fuzz(func(t *testing.T, sel []byte, data []byte) {
		if len(sel) < 1 {
			return
		}
		flags := sel[0]
		seq := &mpeg2.SequenceHeader{
			Width: 64, Height: 48,
			IntraQ:    mpeg2.DefaultIntraQuantMatrix,
			NonIntraQ: mpeg2.DefaultNonIntraQuantMatrix,
		}
		pic := &mpeg2.PictureHeader{
			PicType:          mpeg2.PictureType(1 + flags%3),
			PictureStructure: 3,
			FramePredDCT:     true,
			IntraDCPrecision: int(flags>>2) % 4,
			QScaleType:       flags&(1<<4) != 0,
			IntraVLCFormat:   flags&(1<<5) != 0,
			AlternateScan:    flags&(1<<6) != 0,
			FCode:            [2][2]int{{2, 1}, {1, 2}},
		}
		ctx, err := mpeg2.NewPictureContext(seq, pic)
		if err != nil {
			requireTyped(t, err)
			return
		}
		r := bits.NewReader(data)
		sd, err := mpeg2.NewSliceDecoder(ctx, r, 1+int(flags>>7)*2)
		if err != nil {
			requireTyped(t, err)
			return
		}
		var mb mpeg2.Macroblock
		limit := ctx.MBW*ctx.MBH + 2
		for i := 0; ; i++ {
			if i > limit {
				t.Fatalf("slice decoder did not terminate within %d macroblocks", limit)
			}
			ok, err := sd.Next(&mb)
			if err != nil {
				requireTyped(t, err)
				return
			}
			if !ok {
				return
			}
		}
	})
}

// FuzzDecodePictureUnit runs full picture reconstruction — VLD, dequant,
// IDCT, motion compensation — over an arbitrary picture unit against real
// reference frames, checking the no-panic/typed-error contract of the
// complete decode path.
func FuzzDecodePictureUnit(f *testing.F) {
	st, err := mpeg2.ParseStream(fuzzStream())
	if err != nil {
		f.Fatal(err)
	}
	for _, unit := range st.Pictures[:3] {
		f.Add(unit)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		seq := &mpeg2.SequenceHeader{
			Width: 64, Height: 48,
			IntraQ:    mpeg2.DefaultIntraQuantMatrix,
			NonIntraQ: mpeg2.DefaultNonIntraQuantMatrix,
		}
		w, h := seq.MBWidth()*16, seq.MBHeight()*16
		fwd := mpeg2.NewPixelBuf(0, 0, w, h)
		bwd := mpeg2.NewPixelBuf(0, 0, w, h)
		dst := mpeg2.NewPixelBuf(0, 0, w, h)
		_, err := mpeg2.DecodePictureUnit(seq, data, fwd, bwd, dst)
		requireTyped(t, err)
	})
}

// FuzzStream decodes whole arbitrary streams through the display-order
// decoder, with a dimension guard so the fuzzer cannot demand multi-gigabyte
// frame allocations.
func FuzzStream(f *testing.F) {
	f.Add(fuzzStream())
	f.Add([]byte{0x00, 0x00, 0x01, 0xb3})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := mpeg2.ParseStream(data)
		if err != nil {
			requireTyped(t, err)
			return
		}
		if st.Seq.MBWidth()*st.Seq.MBHeight() > 64*64 || len(st.Pictures) > 64 {
			return // syntactically valid but too large to reconstruct per-exec
		}
		dec := mpeg2.NewStreamDecoder(st)
		_, err = dec.DecodeAll()
		requireTyped(t, err)

		// The resilient decoder must additionally never fail outright.
		rd, err := mpeg2.NewResilientDecoder(data)
		if err != nil {
			requireTyped(t, err)
			return
		}
		if _, err := rd.DecodeAll(); err != nil {
			t.Fatalf("resilient decode failed: %v", err)
		}
	})
}

// sliceOffset returns the byte offset of the first slice payload (just past
// its start code) in a picture unit, or -1.
func sliceOffset(unit []byte) int {
	for off := bits.NextStartCode(unit, 0); off >= 0; off = bits.NextStartCode(unit, off+4) {
		if bits.IsSliceStartCode(unit[off+3]) {
			return off + 4
		}
	}
	return -1
}
