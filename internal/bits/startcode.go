package bits

// MPEG-2 start code values (the byte following the 00 00 01 prefix).
const (
	PictureStartCode  = 0x00
	UserDataStartCode = 0xB2
	SequenceHeaderCod = 0xB3
	SequenceErrorCode = 0xB4
	ExtensionStartCod = 0xB5
	SequenceEndCode   = 0xB7
	GroupStartCode    = 0xB8
	// Slice start codes are 0x01..0xAF; the value is the low 8 bits of the
	// 1-based macroblock row (slice_vertical_position).
	SliceStartCodeMin = 0x01
	SliceStartCodeMax = 0xAF
)

// IsSliceStartCode reports whether code identifies a slice.
func IsSliceStartCode(code byte) bool {
	return code >= SliceStartCodeMin && code <= SliceStartCodeMax
}

// NextStartCode returns the byte offset of the first 00 00 01 prefix at or
// after from, or -1 when none remains. The offset points at the first zero
// byte of the prefix; the start-code value is data[off+3].
func NextStartCode(data []byte, from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i+3 < len(data); i++ {
		if data[i] == 0 {
			if data[i+1] == 0 && data[i+2] == 1 {
				return i
			}
		} else {
			// Skip ahead: a prefix cannot start on a non-zero byte, and the
			// next candidate cannot start before i+1.
			continue
		}
	}
	return -1
}

// StartCodeAt reports whether a 00 00 01 prefix begins at off, and if so the
// code value that follows it.
func StartCodeAt(data []byte, off int) (code byte, ok bool) {
	if off < 0 || off+3 >= len(data) {
		return 0, false
	}
	if data[off] == 0 && data[off+1] == 0 && data[off+2] == 1 {
		return data[off+3], true
	}
	return 0, false
}

// ScanStartCodes returns the offsets and code values of every start code in
// data, in order. It is used by tests and by the stream inspector; the
// decoding pipeline scans incrementally with NextStartCode.
func ScanStartCodes(data []byte) (offs []int, codes []byte) {
	for off := NextStartCode(data, 0); off >= 0; off = NextStartCode(data, off+3) {
		offs = append(offs, off)
		codes = append(codes, data[off+3])
	}
	return offs, codes
}

// NextStartCodeReader aligns r to the next byte boundary and advances it to
// the next start-code prefix, leaving the position ON the prefix (the caller
// reads 32 bits to consume it). It returns false when no start code remains.
func NextStartCodeReader(r *Reader) bool {
	r.AlignByte()
	off := NextStartCode(r.data, r.pos>>3)
	if off < 0 {
		r.pos = len(r.data) * 8
		return false
	}
	r.pos = off * 8
	return true
}
