package wall

import (
	"fmt"
	"math/bits"
	"strings"
)

// TileSet is a subscription: the set of tiles a session wants emitted.
// Tiles are indexed row-major, row*M+col, matching Geometry.TileIndex.
//
// The zero value is the *full* subscription — every tile — so sessions that
// never call Subscribe keep today's behaviour exactly, and the pipeline's
// full-subscription fast path costs nothing. A TileSet built with Add is a
// partial subscription even if it happens to cover every tile; use All to
// ask whether a set covers the whole wall.
type TileSet struct {
	bits []uint64
	n    int // tile count the set was sized for (0 = zero value / full)
}

// NewTileSet returns an empty partial subscription over n tiles.
func NewTileSet(n int) TileSet {
	return TileSet{bits: make([]uint64, (n+63)/64), n: n}
}

// RectTileSet subscribes the inclusive tile rectangle rows r0..r1 ×
// columns c0..c1 of an m-column, n-row wall (the playwall -roi syntax).
func RectTileSet(m, n, r0, c0, r1, c1 int) (TileSet, error) {
	if r0 < 0 || c0 < 0 || r1 >= n || c1 >= m || r0 > r1 || c0 > c1 {
		return TileSet{}, fmt.Errorf("wall: tile rect %d:%d-%d:%d outside %dx%d grid", r0, c0, r1, c1, m, n)
	}
	ts := NewTileSet(m * n)
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			ts.Add(r*m + c)
		}
	}
	return ts, nil
}

// Full reports whether the set is the zero value, i.e. the implicit
// every-tile subscription.
func (ts TileSet) Full() bool { return ts.bits == nil }

// Add subscribes tile t. Panics on the zero value (a full subscription has
// no room to grow); size it with NewTileSet first.
func (ts TileSet) Add(t int) {
	ts.bits[t>>6] |= 1 << (uint(t) & 63)
}

// Has reports whether tile t is subscribed. The zero value has every tile.
func (ts TileSet) Has(t int) bool {
	if ts.bits == nil {
		return true
	}
	if t < 0 || t >= ts.n {
		return false
	}
	return ts.bits[t>>6]&(1<<(uint(t)&63)) != 0
}

// Count returns the number of subscribed tiles; -1 for the zero value,
// whose cardinality is "all of them" without knowing the wall size.
func (ts TileSet) Count() int {
	if ts.bits == nil {
		return -1
	}
	n := 0
	for _, w := range ts.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// All reports whether the set covers every tile of an n-tile wall.
func (ts TileSet) All(n int) bool {
	if ts.bits == nil {
		return true
	}
	return ts.n >= n && ts.Count() >= n
}

// Empty reports whether a partial set has no tiles at all.
func (ts TileSet) Empty() bool { return ts.bits != nil && ts.Count() == 0 }

// Size returns the tile count a partial set was sized for (NewTileSet's n);
// 0 for the zero value.
func (ts TileSet) Size() int { return ts.n }

// Clone returns an independent copy.
func (ts TileSet) Clone() TileSet {
	if ts.bits == nil {
		return TileSet{}
	}
	return TileSet{bits: append([]uint64(nil), ts.bits...), n: ts.n}
}

// Marshal appends the wire form: u16 tile count, then ceil(n/64) u64 words
// little-endian. The zero value marshals to nothing — callers send an empty
// payload section for a full subscription.
func (ts TileSet) Marshal(dst []byte) []byte {
	if ts.bits == nil {
		return dst
	}
	dst = append(dst, byte(ts.n), byte(ts.n>>8))
	for _, w := range ts.bits {
		for i := 0; i < 8; i++ {
			dst = append(dst, byte(w>>(8*i)))
		}
	}
	return dst
}

// UnmarshalTileSet parses Marshal's output. An empty buffer is the full
// subscription.
func UnmarshalTileSet(b []byte) (TileSet, error) {
	if len(b) == 0 {
		return TileSet{}, nil
	}
	if len(b) < 2 {
		return TileSet{}, fmt.Errorf("wall: tileset truncated (%d bytes)", len(b))
	}
	n := int(b[0]) | int(b[1])<<8
	words := (n + 63) / 64
	if len(b) != 2+8*words {
		return TileSet{}, fmt.Errorf("wall: tileset wants %d bytes for %d tiles, got %d", 2+8*words, n, len(b))
	}
	ts := NewTileSet(n)
	for w := 0; w < words; w++ {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[2+8*w+i]) << (8 * i)
		}
		ts.bits[w] = v
	}
	// Bits beyond n would make Count lie; a hostile frame must not.
	if tail := n & 63; tail != 0 && ts.bits[words-1]>>uint(tail) != 0 {
		return TileSet{}, fmt.Errorf("wall: tileset has bits beyond tile %d", n-1)
	}
	return ts, nil
}

func (ts TileSet) String() string {
	if ts.bits == nil {
		return "full"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for t := 0; t < ts.n; t++ {
		if ts.Has(t) {
			if !first {
				sb.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&sb, "%d", t)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
