package mpeg2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomBuf(rng *rand.Rand, x0, y0, w, h int) *PixelBuf {
	b := NewPixelBuf(x0, y0, w, h)
	rng.Read(b.Y)
	rng.Read(b.Cb)
	rng.Read(b.Cr)
	return b
}

// refPredict is a brute-force half-sample predictor used as the oracle.
func refPredict(ref *PixelBuf, x, y int, mv [2]int32) (y16 [256]uint8, cb, cr [64]uint8) {
	lum := func(gx, gy int) int32 { return int32(ref.Y[(gy-ref.Y0)*ref.W+(gx-ref.X0)]) }
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			fx := (x+c)*2 + int(mv[0])
			fy := (y+r)*2 + int(mv[1])
			ix, iy := fx>>1, fy>>1
			hx, hy := fx&1, fy&1
			var v int32
			switch {
			case hx == 0 && hy == 0:
				v = lum(ix, iy)
			case hx == 1 && hy == 0:
				v = (lum(ix, iy) + lum(ix+1, iy) + 1) >> 1
			case hx == 0 && hy == 1:
				v = (lum(ix, iy) + lum(ix, iy+1) + 1) >> 1
			default:
				v = (lum(ix, iy) + lum(ix+1, iy) + lum(ix, iy+1) + lum(ix+1, iy+1) + 2) >> 2
			}
			y16[r*16+c] = uint8(v)
		}
	}
	cw := ref.W / 2
	cmv := [2]int32{mv[0] / 2, mv[1] / 2}
	chroma := func(plane []uint8, out *[64]uint8) {
		at := func(cx, cy int) int32 { return int32(plane[(cy-ref.Y0/2)*cw+(cx-ref.X0/2)]) }
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				fx := (x/2+c)*2 + int(cmv[0])
				fy := (y/2+r)*2 + int(cmv[1])
				ix, iy := fx>>1, fy>>1
				hx, hy := fx&1, fy&1
				var v int32
				switch {
				case hx == 0 && hy == 0:
					v = at(ix, iy)
				case hx == 1 && hy == 0:
					v = (at(ix, iy) + at(ix+1, iy) + 1) >> 1
				case hx == 0 && hy == 1:
					v = (at(ix, iy) + at(ix, iy+1) + 1) >> 1
				default:
					v = (at(ix, iy) + at(ix+1, iy) + at(ix, iy+1) + at(ix+1, iy+1) + 2) >> 2
				}
				out[r*8+c] = uint8(v)
			}
		}
	}
	chroma(ref.Cb, &cb)
	chroma(ref.Cr, &cr)
	return
}

// TestPredictionMatchesOracle: the production motion-compensated prediction
// equals the brute-force oracle for random vectors, including half-sample
// positions and negative components.
func TestPredictionMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := randomBuf(rng, 0, 0, 96, 96)
		x, y := 16+16*(rng.Intn(3)), 16+16*(rng.Intn(3))
		mv := [2]int32{int32(rng.Intn(49) - 24), int32(rng.Intn(49) - 24)}
		var pY [256]uint8
		var pCb, pCr [64]uint8
		if err := PredictMacroblock(ref, x, y, mv, &pY, &pCb, &pCr); err != nil {
			return false
		}
		wy, wcb, wcr := refPredict(ref, x, y, mv)
		return pY == wy && pCb == wcb && pCr == wcr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictionWindowed: prediction from an offset window matches the same
// prediction from a full-picture window (the tile-decoder halo case).
func TestPredictionWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	full := randomBuf(rng, 0, 0, 128, 96)
	win := NewPixelBuf(32, 16, 64, 64)
	win.CopyRect(full, 32, 16, 64, 64)

	x, y := 48, 32
	for _, mv := range [][2]int32{{0, 0}, {-15, 9}, {17, -13}, {1, 1}, {-1, -1}} {
		var a, b [256]uint8
		var acb, acr, bcb, bcr [64]uint8
		if err := PredictMacroblock(full, x, y, mv, &a, &acb, &acr); err != nil {
			t.Fatal(err)
		}
		if err := PredictMacroblock(win, x, y, mv, &b, &bcb, &bcr); err != nil {
			t.Fatal(err)
		}
		if a != b || acb != bcb || acr != bcr {
			t.Fatalf("mv %v: windowed prediction differs", mv)
		}
	}
}

func TestPredictionRejectsOutOfWindow(t *testing.T) {
	ref := NewPixelBuf(0, 0, 64, 64)
	var pY [256]uint8
	var pCb, pCr [64]uint8
	if err := PredictMacroblock(ref, 0, 0, [2]int32{-4, 0}, &pY, &pCb, &pCr); err == nil {
		t.Error("vector leaving the window accepted")
	}
	if err := PredictMacroblock(ref, 48, 48, [2]int32{2, 2}, &pY, &pCb, &pCr); err == nil {
		t.Error("vector past the bottom-right accepted")
	}
	if err := PredictMacroblock(nil, 0, 0, [2]int32{0, 0}, &pY, &pCb, &pCr); err == nil {
		t.Error("nil reference accepted")
	}
}

// TestSkippedPMacroblock: a skipped P macroblock is a co-located copy.
func TestSkippedPMacroblock(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := randomBuf(rng, 0, 0, 64, 64)
	dst := NewPixelBuf(0, 0, 64, 64)
	ph := testPic(PictureP, false, false, false)
	rc := NewReconstructor(ph)
	if err := rc.Skipped(dst, ref, nil, 1, 2, MotionInfo{}); err != nil {
		t.Fatal(err)
	}
	var got, want [MacroblockBytes]byte
	dst.ExtractMacroblock(1, 2, got[:])
	ref.ExtractMacroblock(1, 2, want[:])
	if got != want {
		t.Error("skipped P macroblock is not a co-located copy")
	}
}

// TestSkippedBMacroblock: skipped B repeats the previous macroblock's
// prediction, and after an intra predecessor it is rejected.
func TestSkippedBMacroblock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fwd := randomBuf(rng, 0, 0, 64, 64)
	bwd := randomBuf(rng, 0, 0, 64, 64)
	dst := NewPixelBuf(0, 0, 64, 64)
	ph := testPic(PictureB, false, false, false)
	rc := NewReconstructor(ph)
	prev := MotionInfo{Fwd: true, MVFwd: [2]int32{4, -6}}
	if err := rc.Skipped(dst, fwd, bwd, 1, 1, prev); err != nil {
		t.Fatal(err)
	}
	var pY [256]uint8
	var pCb, pCr [64]uint8
	if err := PredictMacroblock(fwd, 16, 16, prev.MVFwd, &pY, &pCb, &pCr); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if dst.Y[(16+r)*64+16+c] != pY[r*16+c] {
				t.Fatalf("skipped B luma mismatch at %d,%d", r, c)
			}
		}
	}
	if err := rc.Skipped(dst, fwd, bwd, 2, 2, MotionInfo{}); err == nil {
		t.Error("skipped B after intra accepted")
	}
}

func TestPixelBufMacroblockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomBuf(rng, 32, 16, 64, 48)
	b := NewPixelBuf(32, 16, 64, 48)
	var tmp [MacroblockBytes]byte
	a.ExtractMacroblock(3, 2, tmp[:])
	b.InjectMacroblock(3, 2, tmp[:])
	var back [MacroblockBytes]byte
	b.ExtractMacroblock(3, 2, back[:])
	if tmp != back {
		t.Error("extract/inject round trip failed")
	}
	// CopyMacroblock agrees with extract+inject.
	c := NewPixelBuf(32, 16, 64, 48)
	c.CopyMacroblock(a, 3, 2)
	var viaCopy [MacroblockBytes]byte
	c.ExtractMacroblock(3, 2, viaCopy[:])
	if viaCopy != tmp {
		t.Error("CopyMacroblock disagrees with Extract/Inject")
	}
}

func TestPixelBufPanics(t *testing.T) {
	b := NewPixelBuf(0, 0, 32, 32)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("odd geometry", func() { NewPixelBuf(1, 0, 32, 32) })
	var tmp [MacroblockBytes]byte
	expectPanic("extract outside", func() { b.ExtractMacroblock(5, 0, tmp[:]) })
	expectPanic("inject outside", func() { b.InjectMacroblock(0, 5, tmp[:]) })
	expectPanic("copyrect outside", func() { b.CopyRect(b, 0, 0, 64, 64) })
}

func TestContains(t *testing.T) {
	b := NewPixelBuf(16, 32, 64, 64)
	if !b.Contains(16, 32, 64, 64) {
		t.Error("exact window not contained")
	}
	if b.Contains(15, 32, 2, 2) || b.Contains(79, 95, 2, 2) {
		t.Error("out-of-window rect contained")
	}
}
