// Command benchwall regenerates the paper's evaluation tables and figures
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	benchwall -exp all [-frames 48] [-scale 2]
//	benchwall -exp table1|table4|table5|fig6|fig7|table6|fig8|fig9
//	benchwall -chaos [-chaos-drop 0.04] [-chaos-kill=true]
//	benchwall -json [-json-out BENCH_2026-08-05.json]
//
// -json runs the continuous-benchmark suite (serial steady-state fps and
// allocs/picture, IDCT kernel classes, parallel configurations with phase
// breakdowns) and writes BENCH_<date>.json; cmd/benchguard compares two such
// files and fails on regression.
//
// Paper-scale runs use -frames 240 -scale 1 (slow: stream 16 is a
// 3840x2800 sequence).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tiledwall/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all, table1, table4, table5, fig6, fig7, table6, fig8, fig9")
		frames    = flag.Int("frames", 48, "frames per stream (paper: 240)")
		scale     = flag.Int("scale", 2, "resolution divisor (paper: 1)")
		seed      = flag.Int64("seed", 1, "content generator seed (results are reproducible per seed)")
		verbose   = flag.Bool("v", false, "progress logging")
		chaos       = flag.Bool("chaos", false, "run the fault-tolerance sweep: every configuration with recovery armed and a decoder kill, with the recovery breakdown per run")
		chaosKill   = flag.Bool("chaos-kill", true, "chaos mode: inject one decoder kill per run")
		chaosPooled = flag.Bool("chaos-pooled", false, "chaos mode: arm buffer pooling (recovery composes with slab refcounting)")
		jsonMode  = flag.Bool("json", false, "run the continuous-benchmark suite and write BENCH_<date>.json")
		jsonOut   = flag.String("json-out", "", "output path for -json (default BENCH_<date>.json)")
	)
	flag.Parse()

	o := experiments.Options{Frames: *frames, Scale: *scale, Seed: *seed}
	if *verbose {
		o.Log = os.Stderr
	}
	out := os.Stdout

	if *jsonMode {
		now := time.Now()
		rep, err := experiments.BenchJSON(o, now)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		path := *jsonOut
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteBenchJSON(f, rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (serial %.1f fps, %.2f allocs/picture)\n", path, rep.Serial.FPS, rep.Serial.AllocsPerPic)
		return
	}

	if *chaos {
		rows, err := experiments.Chaos(8, *chaosKill, *chaosPooled, o)
		if err != nil {
			log.Fatalf("chaos: %v", err)
		}
		label := fmt.Sprintf("stream 8, kill=%v, pooled=%v, seed %d", *chaosKill, *chaosPooled, *seed)
		experiments.PrintChaos(out, label, rows)
		return
	}

	run := func(name string, fn func() error) {
		switch *exp {
		case "all", name:
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Fprintln(out)
		}
	}
	// fig6 shares data with table5, fig8 with table6.
	alias := map[string]string{"fig6": "table5", "fig8": "table6"}
	if a, ok := alias[*exp]; ok {
		*exp = a
	}

	run("table4", func() error {
		rows, err := experiments.Table4(o)
		if err != nil {
			return err
		}
		experiments.PrintTable4(out, rows)
		return nil
	})

	run("table1", func() error {
		rows, err := experiments.Table1(8, 2, 2, o)
		if err != nil {
			return err
		}
		experiments.PrintTable1(out, "stream 8, 2x2 wall", rows)
		return nil
	})

	run("table5", func() error {
		for _, id := range []int{1, 8} {
			one, two, err := experiments.Table5(id, o)
			if err != nil {
				return err
			}
			experiments.PrintTable5(out, fmt.Sprintf("stream %d", id), one, two)
			fmt.Fprintf(out, "Figure 6 series (nodes -> fps):\n")
			fmt.Fprintf(out, "  one-level: ")
			for _, p := range one {
				fmt.Fprintf(out, "(%d, %.1f) ", p.Nodes, p.FPS)
			}
			fmt.Fprintf(out, "\n  two-level: ")
			for _, p := range two {
				fmt.Fprintf(out, "(%d, %.1f) ", p.Nodes, p.FPS)
			}
			fmt.Fprintln(out)
		}
		return nil
	})

	run("fig7", func() error {
		for _, cfg := range []struct{ k, m, n int }{{2, 2, 2}, {5, 4, 4}} {
			rows, err := experiments.Fig7(8, cfg.k, cfg.m, cfg.n, o)
			if err != nil {
				return err
			}
			experiments.PrintFig7(out, fmt.Sprintf("stream 8, 1-%d-(%d,%d)", cfg.k, cfg.m, cfg.n), rows)
		}
		return nil
	})

	run("table6", func() error {
		rows, err := experiments.Table6(o)
		if err != nil {
			return err
		}
		experiments.PrintTable6(out, rows)
		fmt.Fprintf(out, "Figure 8 series (nodes -> Mpixel/s): ")
		for _, r := range rows {
			fmt.Fprintf(out, "(%d, %.1f) ", r.Nodes, r.PixelRate)
		}
		fmt.Fprintln(out)
		return nil
	})

	run("fig9", func() error {
		rows, err := experiments.Fig9(16, 4, 4, 4, o)
		if err != nil {
			return err
		}
		experiments.PrintFig9(out, "stream 16, 1-4-(4,4)", rows)
		return nil
	})
}
