package tiledwall

import (
	"errors"
	"testing"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/mpegps"
	"tiledwall/internal/video"
)

// TestTypedErrors: the façade's sentinels must match what the pipeline and
// decoder actually return, so callers can errors.Is without internal imports.
func TestTypedErrors(t *testing.T) {
	// Garbage input → ErrCorruptStream, through the public Decode.
	if _, err := Decode([]byte("definitely not mpeg2")); !errors.Is(err, ErrCorruptStream) {
		t.Fatalf("garbage decode error %v is not ErrCorruptStream", err)
	}
	// A deadlocked pipeline → ErrStalled, through the public Play: dropping
	// every protocol ack starves the credit scheme until the watchdog fires.
	stream, err := GenerateStream(3, GenOptions{Frames: 6, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WallConfig{K: 1, M: 2, N: 1}
	cfg.Fabric = cluster.Config{
		StallTimeout: 500 * time.Millisecond,
		Drop:         func(m *cluster.Message) bool { return m.Kind == cluster.MsgAck },
	}
	if _, err := Play(stream, cfg); !errors.Is(err, ErrStalled) {
		t.Fatalf("stalled pipeline error %v is not ErrStalled", err)
	}
	// Wrapped sentinels must still match.
	for _, e := range []error{ErrStalled, ErrCorruptStream, ErrUnsupported} {
		if !errors.Is(newWrapped(e), e) {
			t.Fatalf("wrapped %v does not match with errors.Is", e)
		}
	}
}

func newWrapped(e error) error { return errors.Join(errors.New("context"), e) }

// TestRecoveryFacade: the fault-tolerance layer is reachable from the public
// API — a run with recovery enabled reports its snapshot on the result.
func TestRecoveryFacade(t *testing.T) {
	stream, err := GenerateStream(3, GenOptions{Frames: 6, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WallConfig{K: 1, M: 2, N: 1}
	cfg.Recovery = RecoveryConfig{Enabled: true}
	cfg.Fabric.StallTimeout = 20 * time.Second
	res, err := Play(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap RecoverySnapshot = res.Recovery
	if !snap.Clean() {
		t.Fatalf("fault-free recovery run not clean: %s", snap)
	}
	if len(res.TileEmissions) != 2 {
		t.Fatalf("emission log for %d tiles, want 2", len(res.TileEmissions))
	}
}

// TestFacadeEndToEnd drives the public façade: generate a catalogue stream,
// calibrate, play it on the recommended configuration, and verify against
// the serial decoder.
func TestFacadeEndToEnd(t *testing.T) {
	stream, err := GenerateStream(5, GenOptions{Frames: 9, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(stream, 2, 2, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	k := cal.RecommendedK(0)
	if k == 0 {
		k = 1
	}
	res, err := Play(stream, WallConfig{K: k, M: 2, N: 2, CollectFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(res.Frames) {
		t.Fatalf("%d parallel frames vs %d serial", len(res.Frames), len(ref))
	}
	for i := range ref {
		if !video.Equal(ref[i].Buf, res.Frames[i]) {
			t.Fatalf("frame %d differs", i)
		}
	}
	if res.Modeled().FPS() <= 0 {
		t.Error("no throughput reported")
	}
}

func TestStreamsCatalogue(t *testing.T) {
	if len(Streams()) != 16 {
		t.Fatalf("%d streams", len(Streams()))
	}
	if _, err := GenerateStream(99, GenOptions{}); err == nil {
		t.Error("unknown stream id accepted")
	}
}

// TestProgramStreamPlayback: a PS-wrapped catalogue stream demuxes and plays
// identically to the raw elementary stream.
func TestProgramStreamPlayback(t *testing.T) {
	es, err := GenerateStream(4, GenOptions{Frames: 6, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	ps := mpegps.Mux(es, mpegps.MuxOptions{})
	back, err := mpegps.Demux(ps)
	if err != nil {
		t.Fatal(err)
	}
	refA, err := Decode(es)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := Decode(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(refA) != len(refB) {
		t.Fatalf("picture counts differ: %d vs %d", len(refA), len(refB))
	}
	for i := range refA {
		if !video.Equal(refA[i].Buf, refB[i].Buf) {
			t.Fatalf("frame %d differs after PS round trip", i)
		}
	}
}
