package pdec

import (
	"testing"

	"tiledwall/internal/cluster"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/subpic"
	"tiledwall/internal/wall"
)


// step receives one sub-picture and dispatches it through the strict
// protocol path, standing in for the deleted batch Step loop in these
// single-decoder protocol tests.
func step(d *Decoder) (bool, error) {
	return d.HandleSubPicture(d.node.Recv(cluster.MsgSubPicture))
}

func TestHaloForFCode(t *testing.T) {
	cases := []struct{ fcode, want int }{
		{1, 32}, // reach 8 px + macroblock + alignment
		{2, 32}, // reach 16
		{3, 48}, // reach 32
		{4, 80}, // reach 64
		{0, 32}, // clamped to 1
	}
	for _, c := range cases {
		if got := HaloForFCode(c.fcode); got != c.want {
			t.Errorf("HaloForFCode(%d) = %d, want %d", c.fcode, got, c.want)
		}
		if HaloForFCode(c.fcode)%16 != 0 {
			t.Errorf("halo for fcode %d not macroblock aligned", c.fcode)
		}
	}
}

func testGeo(t *testing.T) *wall.Geometry {
	t.Helper()
	geo, err := wall.NewGeometry(128, 128, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return geo
}

func testSeq() *mpeg2.SequenceHeader {
	return &mpeg2.SequenceHeader{
		Width: 128, Height: 128, ChromaFormat: 1,
		IntraQ:    mpeg2.DefaultIntraQuantMatrix,
		NonIntraQ: mpeg2.DefaultNonIntraQuantMatrix,
	}
}

// TestDecoderRejectsOutOfOrderPicture: the ordering assertion is the
// protocol invariant of §4.5.
func TestDecoderRejectsOutOfOrderPicture(t *testing.T) {
	fab := cluster.New(2, cluster.Config{})
	geo := testGeo(t)
	d := NewDecoder(fab.Node(1), Config{
		Seq: testSeq(), Geo: geo, Tile: 0, HaloPx: 32,
		TileNode: func(tile int) int { return 1 },
	})
	sp := &subpic.SubPicture{}
	sp.Pic.Index = 3 // decoder expects 0
	sp.Pic.PicType = uint8(mpeg2.PictureI)
	fab.Node(0).Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: 3, Tag: 0, Payload: sp.Marshal()})
	if _, err := step(d); err == nil {
		t.Fatal("out-of-order picture accepted")
	}
}

func TestDecoderRejectsGarbagePayload(t *testing.T) {
	fab := cluster.New(2, cluster.Config{})
	geo := testGeo(t)
	d := NewDecoder(fab.Node(1), Config{
		Seq: testSeq(), Geo: geo, Tile: 0, HaloPx: 32,
		TileNode: func(tile int) int { return 1 },
	})
	fab.Node(0).Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: 0, Tag: 0, Payload: []byte{1, 2, 3}})
	if _, err := step(d); err == nil {
		t.Fatal("garbage payload accepted")
	}
}

func TestDecoderFinalCountdown(t *testing.T) {
	fab := cluster.New(2, cluster.Config{})
	geo := testGeo(t)
	d := NewDecoder(fab.Node(1), Config{
		Seq: testSeq(), Geo: geo, Tile: 0, HaloPx: 32,
		TileNode: func(tile int) int { return 1 },
	})
	// A Final for a 1-picture stream arriving before the picture itself must
	// not terminate the decoder.
	final := &subpic.SubPicture{Final: true}
	final.Pic.Index = 1 // total pictures
	fab.Node(0).Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: -1, Tag: 0, Payload: final.Marshal()})
	done, err := step(d)
	if err != nil || done {
		t.Fatalf("early Final: done=%v err=%v", done, err)
	}
	// An empty (pieceless) I picture is legal at the container level.
	sp := &subpic.SubPicture{}
	sp.Pic.Index = 0
	sp.Pic.PicType = uint8(mpeg2.PictureI)
	fab.Node(0).Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: 0, Tag: 0, Payload: sp.Marshal()})
	if done, err = step(d); err != nil || done {
		t.Fatalf("picture: done=%v err=%v", done, err)
	}
	fab.Node(0).Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: -1, Tag: 0, Payload: final.Marshal()})
	if done, err = step(d); err != nil || !done {
		t.Fatalf("final: done=%v err=%v", done, err)
	}
}

// TestDecoderAcksANID: the ack must go to the node named by the message tag,
// not the sender.
func TestDecoderAcksANID(t *testing.T) {
	fab := cluster.New(3, cluster.Config{})
	geo := testGeo(t)
	d := NewDecoder(fab.Node(1), Config{
		Seq: testSeq(), Geo: geo, Tile: 0, HaloPx: 32,
		TileNode: func(tile int) int { return 1 },
	})
	sp := &subpic.SubPicture{}
	sp.Pic.Index = 0
	sp.Pic.PicType = uint8(mpeg2.PictureI)
	// Sent by node 0, ANID = node 2.
	fab.Node(0).Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: 0, Tag: 2, Payload: sp.Marshal()})
	if _, err := step(d); err != nil {
		t.Fatal(err)
	}
	if m, ok := fab.Node(2).TryRecv(cluster.MsgAck); !ok || m.From != 1 {
		t.Fatal("ack not redirected to the ANID node")
	}
	if _, ok := fab.Node(0).TryRecv(cluster.MsgAck); ok {
		t.Fatal("ack also sent to the message sender")
	}
}

// TestDecoderRejectsMissingReference: a P sub-picture before any anchor.
func TestDecoderRejectsMissingReference(t *testing.T) {
	fab := cluster.New(2, cluster.Config{})
	geo := testGeo(t)
	d := NewDecoder(fab.Node(1), Config{
		Seq: testSeq(), Geo: geo, Tile: 0, HaloPx: 32,
		TileNode: func(tile int) int { return 1 },
	})
	sp := &subpic.SubPicture{}
	sp.Pic.Index = 0
	sp.Pic.PicType = uint8(mpeg2.PictureP)
	sp.Pic.FCode = [2][2]uint8{{3, 3}, {15, 15}}
	fab.Node(0).Send(1, &cluster.Message{Kind: cluster.MsgSubPicture, Seq: 0, Tag: 0, Payload: sp.Marshal()})
	if _, err := step(d); err == nil {
		t.Fatal("P picture before anchor accepted")
	}
}
