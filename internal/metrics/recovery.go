package metrics

import (
	"fmt"
	"sync/atomic"
)

// Recovery counts the fault-tolerance machinery's interventions during one
// pipeline run. It is shared by every node of a run and bumped concurrently,
// so all fields are atomics; read a consistent view with Snapshot after the
// run. A run with an all-zero snapshot took no recovery action at all and is
// therefore bit-exact with the fault-free pipeline.
type Recovery struct {
	// Transport layer (reliable endpoint).
	Retransmits int64 // messages re-sent after loss (timeout or NACK)
	Nacks       int64 // NACKs sent by receivers on sequence gaps
	Duplicates  int64 // duplicate deliveries suppressed by XSeq dedup

	// Supervision layer.
	Restarts         int64 // node incarnations respawned after lease expiry
	ReplayedPictures int64 // pictures/sub-pictures re-sent from retained windows

	// Degradation layer.
	ConcealedFrames int64 // tile frames emitted as freeze/grey instead of decoded
	ConcealedMBs    int64 // halo macroblocks concealed by copy-from-reference
	AckTimeouts     int64 // credit waits abandoned after the per-picture deadline
}

// AddRetransmit, AddNack, etc. are the concurrent increment points.
func (r *Recovery) AddRetransmit() { atomic.AddInt64(&r.Retransmits, 1) }
func (r *Recovery) AddNack()       { atomic.AddInt64(&r.Nacks, 1) }
func (r *Recovery) AddDuplicate()  { atomic.AddInt64(&r.Duplicates, 1) }
func (r *Recovery) AddRestart()    { atomic.AddInt64(&r.Restarts, 1) }
func (r *Recovery) AddReplayed(n int) {
	atomic.AddInt64(&r.ReplayedPictures, int64(n))
}
func (r *Recovery) AddConcealedFrame()   { atomic.AddInt64(&r.ConcealedFrames, 1) }
func (r *Recovery) AddConcealedMBs(n int) { atomic.AddInt64(&r.ConcealedMBs, int64(n)) }
func (r *Recovery) AddAckTimeout()       { atomic.AddInt64(&r.AckTimeouts, 1) }

// RecoverySnapshot is a plain-value copy of the counters.
type RecoverySnapshot struct {
	Retransmits      int64
	Nacks            int64
	Duplicates       int64
	Restarts         int64
	ReplayedPictures int64
	ConcealedFrames  int64
	ConcealedMBs     int64
	AckTimeouts      int64
}

// Snapshot returns a consistent copy (call after the run's goroutines join).
func (r *Recovery) Snapshot() RecoverySnapshot {
	if r == nil {
		return RecoverySnapshot{}
	}
	return RecoverySnapshot{
		Retransmits:      atomic.LoadInt64(&r.Retransmits),
		Nacks:            atomic.LoadInt64(&r.Nacks),
		Duplicates:       atomic.LoadInt64(&r.Duplicates),
		Restarts:         atomic.LoadInt64(&r.Restarts),
		ReplayedPictures: atomic.LoadInt64(&r.ReplayedPictures),
		ConcealedFrames:  atomic.LoadInt64(&r.ConcealedFrames),
		ConcealedMBs:     atomic.LoadInt64(&r.ConcealedMBs),
		AckTimeouts:      atomic.LoadInt64(&r.AckTimeouts),
	}
}

// Clean reports whether the run needed no degradation: restarts and
// retransmits repair losslessly, but concealment trades pixels for liveness,
// so output is guaranteed bit-exact only when Clean holds.
func (s RecoverySnapshot) Clean() bool {
	return s.ConcealedFrames == 0 && s.ConcealedMBs == 0 && s.Restarts == 0
}

// Plus returns the fieldwise sum of two snapshots — used to combine a
// session's own charges with the wall-level charges (restarts, replays)
// accrued while it ran.
func (s RecoverySnapshot) Plus(o RecoverySnapshot) RecoverySnapshot {
	return RecoverySnapshot{
		Retransmits:      s.Retransmits + o.Retransmits,
		Nacks:            s.Nacks + o.Nacks,
		Duplicates:       s.Duplicates + o.Duplicates,
		Restarts:         s.Restarts + o.Restarts,
		ReplayedPictures: s.ReplayedPictures + o.ReplayedPictures,
		ConcealedFrames:  s.ConcealedFrames + o.ConcealedFrames,
		ConcealedMBs:     s.ConcealedMBs + o.ConcealedMBs,
		AckTimeouts:      s.AckTimeouts + o.AckTimeouts,
	}
}

// Zero reports whether no recovery machinery fired at all.
func (s RecoverySnapshot) Zero() bool {
	return s == RecoverySnapshot{}
}

func (s RecoverySnapshot) String() string {
	return fmt.Sprintf("retransmits=%d nacks=%d dups=%d restarts=%d replayed=%d concealed_frames=%d concealed_mbs=%d ack_timeouts=%d",
		s.Retransmits, s.Nacks, s.Duplicates, s.Restarts, s.ReplayedPictures,
		s.ConcealedFrames, s.ConcealedMBs, s.AckTimeouts)
}
