package encoder

import "tiledwall/internal/mpeg2"

// Motion estimation: a predictive full-pel search (candidate seeds + greedy
// step refinement) followed by half-sample refinement. SAD on 16×16 luma.

// sad16 computes the sum of absolute differences between the 16x16 luma
// block at (x, y) in cur and the block at (rx, ry) in ref, stopping early
// once best is exceeded.
func sad16(cur, ref *mpeg2.PixelBuf, x, y, rx, ry int, best int32) int32 {
	var sum int32
	for r := 0; r < 16; r++ {
		ci := (y+r-cur.Y0)*cur.W + (x - cur.X0)
		ri := (ry+r-ref.Y0)*ref.W + (rx - ref.X0)
		c := cur.Y[ci : ci+16]
		p := ref.Y[ri : ri+16]
		for k := 0; k < 16; k++ {
			d := int32(c[k]) - int32(p[k])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum >= best {
			return sum
		}
	}
	return sum
}

// sadHalf computes SAD against a half-sample interpolated reference
// position. mv is in half-sample units relative to (x, y).
func sadHalf(cur, ref *mpeg2.PixelBuf, x, y int, mvx, mvy int32, best int32) int32 {
	rx := x + int(mvx>>1)
	ry := y + int(mvy>>1)
	hx := int(mvx & 1)
	hy := int(mvy & 1)
	if hx == 0 && hy == 0 {
		return sad16(cur, ref, x, y, rx, ry, best)
	}
	var sum int32
	for r := 0; r < 16; r++ {
		ci := (y+r-cur.Y0)*cur.W + (x - cur.X0)
		ri := (ry+r-ref.Y0)*ref.W + (rx - ref.X0)
		c := cur.Y[ci : ci+16]
		row := ref.Y[ri:]
		nxt := ref.Y[ri+hy*ref.W:]
		for k := 0; k < 16; k++ {
			var p int32
			switch {
			case hx == 1 && hy == 1:
				p = (int32(row[k]) + int32(row[k+1]) + int32(nxt[k]) + int32(nxt[k+1]) + 2) >> 2
			case hx == 1:
				p = (int32(row[k]) + int32(row[k+1]) + 1) >> 1
			default:
				p = (int32(row[k]) + int32(nxt[k]) + 1) >> 1
			}
			d := int32(c[k]) - p
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum >= best {
			return sum
		}
	}
	return sum
}

// estimator carries the search bounds for one picture/reference pair.
type estimator struct {
	cur, ref *mpeg2.PixelBuf
	rangePx  int // full-pel search range (bounded by f_code)
	maxHalf  int32
}

func newEstimator(cur, ref *mpeg2.PixelBuf, searchRange, fcode int) *estimator {
	// f_code f permits half-sample vectors in [-16<<(f-1), 16<<(f-1)-1].
	maxHalf := int32(16) << uint(fcode-1)
	r := searchRange
	if max := int(maxHalf/2) - 1; r > max {
		r = max
	}
	return &estimator{cur: cur, ref: ref, rangePx: r, maxHalf: maxHalf}
}

// clampFull keeps a full-pel displacement (dx, dy) for the macroblock at
// (x, y) inside both the search range and the reference picture.
func (e *estimator) clampFull(x, y, dx, dy int) (int, int) {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	dx = clamp(dx, -e.rangePx, e.rangePx)
	dy = clamp(dy, -e.rangePx, e.rangePx)
	dx = clamp(dx, e.ref.X0-x, e.ref.X0+e.ref.W-16-x)
	dy = clamp(dy, e.ref.Y0-y, e.ref.Y0+e.ref.H-16-y)
	return dx, dy
}

// search finds a motion vector (half-sample units) for the macroblock at
// luma position (x, y), seeded with candidate predictors (half-sample
// units). It returns the vector and its SAD.
func (e *estimator) search(x, y int, seeds [][2]int32) ([2]int32, int32) {
	type cand struct{ dx, dy int }
	cands := []cand{{0, 0}}
	for _, s := range seeds {
		cands = append(cands, cand{int(s[0] >> 1), int(s[1] >> 1)})
	}
	best := int32(1 << 30)
	bx, by := 0, 0
	seen := map[[2]int]bool{}
	eval := func(dx, dy int) {
		dx, dy = e.clampFull(x, y, dx, dy)
		k := [2]int{dx, dy}
		if seen[k] {
			return
		}
		seen[k] = true
		if s := sad16(e.cur, e.ref, x, y, x+dx, y+dy, best); s < best {
			best, bx, by = s, dx, dy
		}
	}
	for _, c := range cands {
		eval(c.dx, c.dy)
	}
	// Coarse grid scan across the whole range so strong motion with a flat
	// SAD gradient (noise-like content) is not lost to local minima.
	r := e.rangePx
	for _, dy := range [5]int{-r, -r / 2, 0, r / 2, r} {
		for _, dx := range [5]int{-r, -r / 2, 0, r / 2, r} {
			eval(dx, dy)
		}
	}
	// Greedy large-to-small step refinement.
	for _, step := range []int{4, 2, 1} {
		for {
			cx, cy := bx, by
			eval(cx+step, cy)
			eval(cx-step, cy)
			eval(cx, cy+step)
			eval(cx, cy-step)
			eval(cx+step, cy+step)
			eval(cx-step, cy-step)
			eval(cx+step, cy-step)
			eval(cx-step, cy+step)
			if bx == cx && by == cy {
				break
			}
		}
	}

	// Half-sample refinement around the full-pel winner.
	mv := [2]int32{int32(bx) * 2, int32(by) * 2}
	bestMV := mv
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			c := [2]int32{mv[0] + dx, mv[1] + dy}
			if !e.mvValid(x, y, c) {
				continue
			}
			if s := sadHalf(e.cur, e.ref, x, y, c[0], c[1], best); s < best {
				best, bestMV = s, c
			}
		}
	}
	return bestMV, best
}

// mvValid reports whether the half-sample vector keeps every sample the
// interpolator touches inside the reference window and the f_code range.
func (e *estimator) mvValid(x, y int, mv [2]int32) bool {
	if mv[0] < -e.maxHalf || mv[0] > e.maxHalf-1 || mv[1] < -e.maxHalf || mv[1] > e.maxHalf-1 {
		return false
	}
	rx := x + int(mv[0]>>1)
	ry := y + int(mv[1]>>1)
	hx := int(mv[0] & 1)
	hy := int(mv[1] & 1)
	return e.ref.Contains(rx, ry, 16+hx, 16+hy)
}
