package wall

import (
	"fmt"

	"tiledwall/internal/mpeg2"
)

// Edge blending: projectors overlap and each applies an intensity ramp
// across the shared band so the two images sum to full brightness on the
// screen (the paper's wall used ~40 px optical blending; §5.1 notes the
// replicated macroblocks this costs the splitter). This file models the
// optical side: per-tile ramp application and the composite the audience
// sees, used by tools and tests to visualise overlap correctness.

// BlendRamp returns per-position intensity weights (fixed point, 0..256)
// across a shared band of the given width, rising from the tile's outer
// edge inward; two opposing ramps sum to ~256 everywhere.
func BlendRamp(width int) []int {
	ramp := make([]int, width)
	for i := range ramp {
		ramp[i] = ((2*i + 1) * 256) / (2 * width)
	}
	return ramp
}

// ApplyBlend multiplies the tile image by its blend ramps in place. Ramp
// widths are the *actual* shared band with each neighbour (the nominal
// overlap after macroblock alignment), so opposing ramps always pair up.
func (g *Geometry) ApplyBlend(tile int, buf *mpeg2.PixelBuf) {
	if g.Overlap <= 0 {
		return
	}
	r := g.Tile(tile)
	col := tile % g.M
	row := tile / g.M

	scale := func(gx, gy, w int) {
		i := (gy-buf.Y0)*buf.W + (gx - buf.X0)
		buf.Y[i] = uint8(int(buf.Y[i]) * w >> 8)
		if gx&1 == 0 && gy&1 == 0 {
			ci := (gy/2-buf.Y0/2)*(buf.W/2) + (gx/2 - buf.X0/2)
			// Chroma is centred at 128; blend the deviation so neutral
			// colour stays neutral through the ramp.
			buf.Cb[ci] = uint8(128 + ((int(buf.Cb[ci])-128)*w)>>8)
			buf.Cr[ci] = uint8(128 + ((int(buf.Cr[ci])-128)*w)>>8)
		}
	}

	fadeCols := func(x0, x1 int, outerLeft bool) {
		width := x1 - x0
		if width <= 0 {
			return
		}
		ramp := BlendRamp(width)
		for dx := 0; dx < width; dx++ {
			w := ramp[dx]
			x := x0 + dx
			if !outerLeft {
				x = x1 - 1 - dx
			}
			for y := r.Y0; y < r.Y1; y++ {
				scale(x, y, w)
			}
		}
	}
	fadeRows := func(y0, y1 int, outerTop bool) {
		height := y1 - y0
		if height <= 0 {
			return
		}
		ramp := BlendRamp(height)
		for dy := 0; dy < height; dy++ {
			w := ramp[dy]
			y := y0 + dy
			if !outerTop {
				y = y1 - 1 - dy
			}
			for x := r.X0; x < r.X1; x++ {
				scale(x, y, w)
			}
		}
	}

	if col > 0 {
		left := g.Tile(g.TileIndex(col-1, row))
		fadeCols(r.X0, min(left.X1, r.X1), true) // shared band with the left neighbour
	}
	if col < g.M-1 {
		right := g.Tile(g.TileIndex(col+1, row))
		fadeCols(max(right.X0, r.X0), r.X1, false)
	}
	if row > 0 {
		up := g.Tile(g.TileIndex(col, row-1))
		fadeRows(r.Y0, min(up.Y1, r.Y1), true)
	}
	if row < g.N-1 {
		down := g.Tile(g.TileIndex(col, row+1))
		fadeRows(max(down.Y0, r.Y0), r.Y1, false)
	}
}

// CompositeBlend simulates the screen: every tile's (blended) light adds
// up. With correct per-tile ramps and identical pixel data in the overlap,
// the composite reproduces the unblended image up to small rounding error.
func (g *Geometry) CompositeBlend(tiles []*mpeg2.PixelBuf) (*mpeg2.PixelBuf, error) {
	if len(tiles) != g.NumTiles() {
		return nil, fmt.Errorf("wall: composite needs %d tiles, got %d", g.NumTiles(), len(tiles))
	}
	out := mpeg2.NewPixelBuf(0, 0, g.PicW, g.PicH)
	accY := make([]int, g.PicW*g.PicH)
	accCb := make([]int, g.PicW*g.PicH/4)
	accCr := make([]int, g.PicW*g.PicH/4)
	for t, buf := range tiles {
		r := g.Tile(t)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				accY[y*g.PicW+x] += int(buf.Y[(y-buf.Y0)*buf.W+(x-buf.X0)])
			}
		}
		cw := buf.W / 2
		for y := r.Y0 / 2; y < r.Y1/2; y++ {
			for x := r.X0 / 2; x < r.X1/2; x++ {
				i := (y-buf.Y0/2)*cw + (x - buf.X0/2)
				accCb[y*g.PicW/2+x] += int(buf.Cb[i]) - 128
				accCr[y*g.PicW/2+x] += int(buf.Cr[i]) - 128
			}
		}
	}
	clip := func(v int) uint8 {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v)
	}
	for i, v := range accY {
		out.Y[i] = clip(v)
	}
	for i := range accCb {
		out.Cb[i] = clip(accCb[i] + 128)
		out.Cr[i] = clip(accCr[i] + 128)
	}
	return out, nil
}
