// Command playwall plays an MPEG-2 stream on a simulated 1-k-(m,n) tiled
// display wall and reports frame rate, runtime breakdown and bandwidth —
// the interactive face of the system the paper describes.
//
// Usage:
//
//	playwall -in stream.m2v -m 4 -n 4 [-k 4 | -auto] [-overlap 40] [-verify]
//	playwall -in stream.m2v -m 4 -n 4 -k 2 -sessions 4
//	playwall -in stream.m2v -m 2 -n 2 -fleet 4 -sessions 16
//	playwall -in stream.m2v -m 6 -n 4 -k 2 -roi 0:0-1:1 -trick drop-b
//
// With -auto, k is chosen by the §4.6 calibration (ts/td); -k 0 runs the
// one-level 1-(m,n) system. With -sessions N, one resident wall decodes N
// concurrent copies of the stream and per-session plus aggregate frame rates
// are reported. With -fleet W, W warm walls of the requested shape stand
// behind one front door and the sessions are routed to the least-loaded wall,
// with per-wall placement and recycle counts reported alongside the
// aggregate. With -roi the session subscribes only a tile rectangle (the
// splitters skip everything outside its halo closure) and -trick plays
// I-only or drop-B; both print the per-session subscribed-tile and
// skipped-picture accounting.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"tiledwall/internal/fleet"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/mpegps"
	"tiledwall/internal/recovery"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
	"tiledwall/internal/video"
	"tiledwall/internal/wall"
)

func main() {
	var (
		in      = flag.String("in", "", "input MPEG-2 video elementary stream")
		k       = flag.Int("k", 0, "second-level splitters (0 = one-level)")
		auto    = flag.Bool("auto", false, "choose k by calibration (§4.6)")
		m       = flag.Int("m", 2, "tiles across")
		n       = flag.Int("n", 2, "tiles down")
		overlap = flag.Int("overlap", 0, "projector overlap in pixels")
		verify  = flag.Bool("verify", false, "compare output against the serial decoder")
		pooled  = flag.Bool("pooled", false, "recycle message slabs and decode state (zero steady-state allocation)")
		splitW  = flag.Int("split-workers", 0, "slice-parse workers per splitter (0 = GOMAXPROCS, 1 = serial)")
		snap    = flag.String("snapshot", "", "write the first displayed frame as a PPM image")
		bwBps   = flag.Float64("bandwidth", 0, "fabric throttle in bytes/s (0 = unthrottled)")
		nSess   = flag.Int("sessions", 1, "concurrent copies of the stream through one resident wall")
		roiSpec = flag.String("roi", "", "subscribe only the tile rectangle r0:c0-r1:c1 (rows r0..r1 x columns c0..c1); unwatched tiles are skipped")
		trickS  = flag.String("trick", "", "trick play: i-only (I pictures only) or drop-b (I and P only)")
		fleetW  = flag.Int("fleet", 0, "run a fleet of W warm walls of this shape and route -sessions through its front door")
		trans   = flag.String("transport", "", "message transport: fabric (default) or tcp (loopback sockets through a hub)")

		// Fault tolerance (DESIGN.md §13): -recover arms the recovery layer;
		// -chaos additionally injects seeded crashes so the repair machinery
		// is visible from the CLI. In node mode -recover also makes the TCP
		// links recoverable (redial after loss instead of aborting).
		ftRecover = flag.Bool("recover", false, "enable the fault-tolerance layer (supervised respawn, replay, deadline concealment)")
		chaosSeed = flag.Int64("chaos", 0, "seed for fault injection: kill a random decoder (and splitter when -k > 0) mid-stream; implies -recover")

		// Multi-process node mode (see node.go): every role of the wall runs
		// in its own OS process, wired over TCP through the root's hub.
		role    = flag.String("role", "", "node mode: root, splitter, decoder or all (empty = single-process wall)")
		listen  = flag.String("listen", "127.0.0.1:0", "hub listen address (roles root and all)")
		connect = flag.String("connect", "", "hub address to dial (roles splitter and decoder)")
		stall   = flag.Duration("stall", 30*time.Second, "node-mode stall watchdog (0 = disabled)")
		digest  = flag.Bool("digest", false, "node mode: print per-tile FNV digests of the displayed frames")
	)
	flag.Parse()

	// Worker roles host no root: they never read the stream.
	needsStream := *role == "" || *role == "root" || *role == "all"
	if needsStream && *in == "" {
		log.Fatal("playwall: -in is required")
	}
	var data []byte
	var err error
	if needsStream {
		if data, err = os.ReadFile(*in); err != nil {
			log.Fatal(err)
		}
		if mpegps.IsProgramStream(data) {
			if data, err = mpegps.Demux(data); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *chaosSeed != 0 {
		*ftRecover = true
	}

	var sub wall.TileSet
	if *roiSpec != "" {
		var r0, c0, r1, c1 int
		if _, err := fmt.Sscanf(*roiSpec, "%d:%d-%d:%d", &r0, &c0, &r1, &c1); err != nil {
			log.Fatalf("playwall: -roi %q: want r0:c0-r1:c1 (e.g. 0:0-1:1)", *roiSpec)
		}
		if sub, err = wall.RectTileSet(*m, *n, r0, c0, r1, c1); err != nil {
			log.Fatalf("playwall: -roi: %v", err)
		}
	}
	trick := service.TrickNone
	switch *trickS {
	case "":
	case "i-only":
		trick = service.TrickIOnly
	case "drop-b":
		trick = service.TrickDropB
	default:
		log.Fatalf("playwall: -trick %q: want i-only or drop-b", *trickS)
	}
	roiActive := !sub.Full() || trick != service.TrickNone
	if roiActive {
		if *role != "" {
			log.Fatal("playwall: -roi/-trick are not supported in node mode")
		}
		// A partial subscription emits nothing for unwatched tiles and trick
		// play drops pictures, so full wall frames cannot be assembled.
		if *verify || *snap != "" {
			log.Fatal("playwall: -roi/-trick cannot be combined with -verify or -snapshot")
		}
	}

	if *role != "" {
		if (*role == "splitter" || *role == "decoder") && *connect == "" {
			log.Fatalf("playwall: -role %s requires -connect <hub address>", *role)
		}
		nodeCfg := system.Config{K: *k, M: *m, N: *n, Overlap: *overlap, Pooled: *pooled, SplitWorkers: *splitW}
		if *ftRecover {
			nodeCfg.Recovery.Enabled = true
		}
		// Every process of the wall must agree on the chaos plan seed, but a
		// kill only fires on the process hosting the victim node.
		nodeCfg.Chaos = chaosPlan(*chaosSeed, *k, *m, *n)
		runNode(*role, *listen, *connect, nodeCfg, *stall, *digest, data, *nSess)
		return
	}

	if *auto {
		cal, err := system.Calibrate(data, *m, *n, *overlap, 12)
		if err != nil {
			log.Fatal(err)
		}
		*k = cal.RecommendedK(0)
		fmt.Printf("calibration: ts=%v td=%v -> k=%d (predicted %.1f fps)\n",
			cal.TS, cal.TD, *k, cal.PredictedFPS(*k))
	}

	cfg := system.Config{K: *k, M: *m, N: *n, Overlap: *overlap, Pooled: *pooled, SplitWorkers: *splitW, CollectFrames: *verify || *snap != ""}
	cfg.Fabric.BandwidthBps = *bwBps
	cfg.Transport = *trans
	if *ftRecover {
		cfg.Recovery.Enabled = true
	}
	if plan := chaosPlan(*chaosSeed, *k, *m, *n); plan.KillDecoder {
		cfg.Chaos = plan
		fmt.Printf("chaos seed %d: kill decoder tile %d at picture %d", *chaosSeed, plan.DecoderTile, plan.KillAtPicture)
		if plan.KillSplitter {
			fmt.Printf(", kill splitter %d at picture %d", plan.SplitterIdx, plan.KillAtPicture)
		}
		fmt.Println()
	}
	if *fleetW > 0 {
		playFleet(data, cfg, *fleetW, *nSess, sub, trick)
		return
	}
	if *nSess > 1 || roiActive {
		playSessions(data, cfg, *nSess, sub, trick)
		return
	}
	// Build the wall explicitly rather than through system.Run so the health
	// state can be read before teardown — the recovery report is identical
	// over the in-process fabric and TCP (one pipeline, DESIGN.md §6).
	rw, err := system.NewResidentWall(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rw.Play(data)
	if err != nil {
		rw.Close()
		log.Fatal(err)
	}
	health := rw.Health()
	if err := rw.Close(); err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Warnings {
		fmt.Printf("warning: %s\n", w)
	}

	name := fmt.Sprintf("1-%d-(%d,%d)", *k, *m, *n)
	if *k == 0 {
		name = fmt.Sprintf("1-(%d,%d)", *m, *n)
	}
	tp := res.Modeled()
	fmt.Printf("%s on %d PCs: %d pictures, busiest node %v\n", name, cfg.NumNodes(), tp.Pictures, tp.Elapsed)
	fmt.Printf("  pipeline throughput %.1f fps, %.1f Mpixel/s, equivalent bit rate %.1f Mbit/s\n",
		tp.FPS(), tp.PixelRate(), tp.EquivalentBitRate(res.StreamBytes))
	fmt.Printf("  (simulation wall clock: %v on %d cores)\n", res.Throughput.Elapsed, runtime.NumCPU())
	if *ftRecover {
		fmt.Printf("  recovery: %s (clean=%v), health %v\n", res.Recovery, res.Recovery.Clean(), health)
	}

	fmt.Printf("  decoder runtime breakdown (ms/picture):\n")
	fmt.Printf("  %-8s", "decoder")
	for _, p := range metrics.Phases() {
		fmt.Printf("%9s", p)
	}
	fmt.Println()
	for i, d := range res.Decoders {
		fmt.Printf("  %-8d", i)
		for _, p := range metrics.Phases() {
			fmt.Printf("%9.2f", d.Breakdown.PerPicture(p))
		}
		fmt.Println()
	}

	secs := tp.Elapsed.Seconds()
	fmt.Printf("  bandwidth over modelled playback time (MB/s):\n")
	for i, id := range res.DecoderNodeIDs {
		st := res.NodeStats[id]
		fmt.Printf("  D%-3d recv %7.2f  send %7.2f\n", i, float64(st.BytesRecv)/secs/1e6, float64(st.BytesSent)/secs/1e6)
	}
	for i, id := range res.SplitterNodeIDs {
		st := res.NodeStats[id]
		fmt.Printf("  S%-3d recv %7.2f  send %7.2f\n", i, float64(st.BytesRecv)/secs/1e6, float64(st.BytesSent)/secs/1e6)
	}

	if *snap != "" && len(res.Frames) > 0 {
		f, err := os.Create(*snap)
		if err != nil {
			log.Fatal(err)
		}
		if err := video.WritePPM(f, res.Frames[0]); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s (%dx%d)\n", *snap, res.Frames[0].W, res.Frames[0].H)
	}

	if *verify {
		dec, err := mpeg2.NewDecoder(data)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := dec.DecodeAll()
		if err != nil {
			log.Fatal(err)
		}
		if len(ref) != len(res.Frames) {
			log.Fatalf("verify: %d parallel frames vs %d serial", len(res.Frames), len(ref))
		}
		// Bit-exactness is only guaranteed when recovery never concealed:
		// concealment trades pixels for liveness by design (DESIGN.md §13).
		if res.Recovery.ConcealedFrames > 0 || res.Recovery.ConcealedMBs > 0 {
			fmt.Printf("  verify: %d frames, frame count matches serial; pixel check skipped (recovery concealed)\n", len(ref))
		} else {
			for i := range ref {
				if !video.Equal(ref[i].Buf, res.Frames[i]) {
					log.Fatalf("verify: frame %d differs from serial decode", i)
				}
			}
			fmt.Printf("  verify: %d frames bit-exact with the serial decoder\n", len(ref))
		}
	}
}

// chaosPlan derives a kill plan from a seed: one random decoder, plus one
// random second-level splitter on hierarchical walls, both dying at the same
// early picture. Seed 0 returns the zero plan (chaos off).
func chaosPlan(seed int64, k, m, n int) recovery.ChaosPlan {
	if seed == 0 {
		return recovery.ChaosPlan{}
	}
	rng := rand.New(rand.NewSource(seed))
	plan := recovery.ChaosPlan{
		KillDecoder:   true,
		DecoderTile:   rng.Intn(m * n),
		KillAtPicture: 1 + rng.Intn(8),
	}
	if k > 0 {
		// The victim must be the round-robin owner of the kill picture, or
		// the injection is a dead letter.
		plan.KillSplitter = true
		plan.SplitterIdx = plan.KillAtPicture % k
	}
	return plan
}

// subStats renders a session's subscription/trick accounting for the CLI: how
// many tiles it watched, what the root dropped, and how many per-tile skip
// markers replaced full sub-pictures.
func subStats(r *service.SessionResult, tiles int) string {
	if r.SubscribedTiles == tiles && r.SkippedPictures == 0 && r.SkippedSubPics == 0 {
		return ""
	}
	return fmt.Sprintf("  [%d/%d tiles, %d shipped / %d dropped pictures, %d skipped sub-pictures]",
		r.SubscribedTiles, tiles, r.ShippedPictures, r.SkippedPictures, r.SkippedSubPics)
}

// playSessions drives N concurrent copies of the stream through one resident
// wall and reports per-session and aggregate wall-clock frame rates, plus the
// subscription accounting when an ROI or trick mode is active.
func playSessions(data []byte, cfg system.Config, n int, sub wall.TileSet, trick service.TrickMode) {
	if cfg.MaxSessions < n {
		cfg.MaxSessions = n
	}
	w, err := system.NewResidentWall(cfg)
	if err != nil {
		log.Fatal(err)
	}
	name := fmt.Sprintf("1-%d-(%d,%d)", cfg.K, cfg.M, cfg.N)
	if cfg.K == 0 {
		name = fmt.Sprintf("1-(%d,%d)", cfg.M, cfg.N)
	}
	fmt.Printf("%s resident wall, %d concurrent sessions\n", name, n)
	if !sub.Full() {
		fmt.Printf("  subscription: %d of %d tiles (%v)\n", sub.Count(), cfg.M*cfg.N, sub)
	}
	if trick != service.TrickNone {
		fmt.Printf("  trick play: %v\n", trick)
	}

	results := make([]*service.SessionResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := w.Open(fmt.Sprintf("playwall-%d", i))
			if err != nil {
				errs[i] = err
				return
			}
			if !sub.Full() {
				if err := s.Subscribe(sub); err != nil {
					s.Close()
					errs[i] = err
					return
				}
			}
			if trick != service.TrickNone {
				if err := s.SetTrickMode(trick); err != nil {
					s.Close()
					errs[i] = err
					return
				}
			}
			if err := s.Feed(data); err != nil {
				s.Close()
				errs[i] = err
				return
			}
			results[i], errs[i] = s.Close()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if cfg.Recovery.Enabled {
		fmt.Printf("  recovery: %s, health %v\n", w.Service().Recovery(), w.Health())
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	pics := 0
	for i, err := range errs {
		if err != nil {
			log.Fatalf("session %d: %v", i, err)
		}
		r := results[i]
		fmt.Printf("  session %-3d %5d pictures in %8v (%6.1f fps)%s\n",
			i, r.Throughput.Pictures, r.Throughput.Elapsed.Round(time.Millisecond), r.Throughput.FPS(),
			subStats(r, cfg.M*cfg.N))
		pics += r.Throughput.Pictures
	}
	fmt.Printf("  aggregate   %5d pictures in %8v (%6.1f fps wall clock, %d cores)\n",
		pics, elapsed.Round(time.Millisecond), float64(pics)/elapsed.Seconds(), runtime.NumCPU())
}

// playFleet stands up W warm walls of the requested shape behind one fleet
// front door, routes n concurrent copies of the stream through it, and
// reports where each session landed plus the per-wall and aggregate figures.
func playFleet(data []byte, cfg system.Config, wallsN, n int, sub wall.TileSet, trick service.TrickMode) {
	// Size each wall so the fleet's aggregate capacity covers the run: the
	// CLI demonstrates routing spread, not admission-queue behaviour (the
	// soak harness owns that regime).
	per := (n + wallsN - 1) / wallsN
	if per < 4 {
		per = 4
	}
	wc := service.Config{
		K: cfg.K, M: cfg.M, N: cfg.N, Overlap: cfg.Overlap,
		Pooled: cfg.Pooled, SplitWorkers: cfg.SplitWorkers,
		MaxSessions: per,
		Recovery:    cfg.Recovery,
	}
	walls := make([]service.Config, wallsN)
	for i := range walls {
		walls[i] = wc
	}
	f, err := fleet.New(fleet.Config{Walls: walls})
	if err != nil {
		log.Fatal(err)
	}
	name := fmt.Sprintf("1-%d-(%d,%d)", cfg.K, cfg.M, cfg.N)
	if cfg.K == 0 {
		name = fmt.Sprintf("1-(%d,%d)", cfg.M, cfg.N)
	}
	fmt.Printf("fleet of %d x %s walls, %d sessions through the front door\n", wallsN, name, n)
	if !sub.Full() {
		fmt.Printf("  subscription: %d of %d tiles (%v)\n", sub.Count(), cfg.M*cfg.N, sub)
	}
	if trick != service.TrickNone {
		fmt.Printf("  trick play: %v\n", trick)
	}

	type verdict struct {
		wall int
		res  *service.SessionResult
		err  error
	}
	out := make([]verdict, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := f.Open(fmt.Sprintf("playwall-%d", i), fleet.OpenOptions{Subscribe: sub, Trick: trick})
			if err != nil {
				out[i] = verdict{wall: -1, err: err}
				return
			}
			if err := s.Feed(data); err != nil {
				s.Close()
				out[i] = verdict{wall: s.Wall(), err: err}
				return
			}
			res, err := s.Close()
			out[i] = verdict{wall: s.Wall(), res: res, err: err}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	stats := f.Stats()
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	pics := 0
	perWall := make([]int, wallsN)
	for i, v := range out {
		if v.err != nil {
			log.Fatalf("session %d (wall %d): %v", i, v.wall, v.err)
		}
		fmt.Printf("  session %-3d wall %-2d %5d pictures in %8v (%6.1f fps)%s\n",
			i, v.wall, v.res.Throughput.Pictures, v.res.Throughput.Elapsed.Round(time.Millisecond), v.res.Throughput.FPS(),
			subStats(v.res, cfg.M*cfg.N))
		pics += v.res.Throughput.Pictures
		perWall[v.wall]++
	}
	for _, ws := range stats.Walls {
		fmt.Printf("  wall %-2d %s: %d sessions routed, %d recycles\n",
			ws.Wall, ws.Grid, perWall[ws.Wall], ws.Recycles)
	}
	fmt.Printf("  aggregate   %5d pictures in %8v (%6.1f fps wall clock, %d cores)\n",
		pics, elapsed.Round(time.Millisecond), float64(pics)/elapsed.Seconds(), runtime.NumCPU())
}
