package wall

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tiledwall/internal/mpeg2"
)

func TestGeometryBasic(t *testing.T) {
	g, err := NewGeometry(1024, 768, 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTiles() != 16 {
		t.Fatalf("tiles = %d", g.NumTiles())
	}
	if err := g.CoverageCheck(); err != nil {
		t.Fatal(err)
	}
	// Without overlap every macroblock belongs to exactly one tile.
	var set []int
	for mby := 0; mby < 768/16; mby++ {
		for mbx := 0; mbx < 1024/16; mbx++ {
			set = g.TilesForMB(mbx, mby, set[:0])
			if len(set) != 1 {
				t.Fatalf("mb (%d,%d) in %d tiles without overlap", mbx, mby, len(set))
			}
			if set[0] != g.Owner(mbx, mby) {
				t.Fatalf("owner mismatch at (%d,%d)", mbx, mby)
			}
		}
	}
}

func TestGeometryOverlapReplicates(t *testing.T) {
	g, err := NewGeometry(1024, 768, 4, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CoverageCheck(); err != nil {
		t.Fatal(err)
	}
	shared := 0
	var set []int
	for mby := 0; mby < 768/16; mby++ {
		for mbx := 0; mbx < 1024/16; mbx++ {
			set = g.TilesForMB(mbx, mby, set[:0])
			if len(set) > 1 {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Error("overlap produced no shared macroblocks")
	}
}

func TestGeometryErrors(t *testing.T) {
	if _, err := NewGeometry(100, 768, 2, 2, 0); err == nil {
		t.Error("non-MB-aligned width accepted")
	}
	if _, err := NewGeometry(1024, 768, 0, 2, 0); err == nil {
		t.Error("zero tiling accepted")
	}
	if _, err := NewGeometry(1024, 768, 2, 2, -1); err == nil {
		t.Error("negative overlap accepted")
	}
	if _, err := NewGeometry(32, 32, 8, 8, 0); err == nil {
		t.Error("tiles smaller than a macroblock accepted")
	}
}

func TestRect(t *testing.T) {
	r := Rect{16, 32, 48, 64}
	if r.W() != 32 || r.H() != 32 {
		t.Error("size wrong")
	}
	if !r.Contains(16, 32) || r.Contains(48, 64) {
		t.Error("half-open semantics broken")
	}
	if !r.Intersects(Rect{40, 60, 100, 100}) || r.Intersects(Rect{48, 32, 60, 64}) {
		t.Error("intersection broken")
	}
}

// Property: for random geometries every macroblock is covered and its owner
// covers it; rows of seams are monotone.
func TestGeometryInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(6) + 1
		n := rng.Intn(4) + 1
		w := (m*4 + rng.Intn(40)) * 16
		h := (n*4 + rng.Intn(30)) * 16
		ov := rng.Intn(3) * 16
		g, err := NewGeometry(w, h, m, n, ov)
		if err != nil {
			return false
		}
		return g.CoverageCheck() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssemble(t *testing.T) {
	g, err := NewGeometry(128, 64, 2, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Fill a reference image, split it into tile windows, reassemble.
	ref := mpeg2.NewPixelBuf(0, 0, 128, 64)
	for i := range ref.Y {
		ref.Y[i] = uint8(i * 7)
	}
	for i := range ref.Cb {
		ref.Cb[i] = uint8(i * 3)
		ref.Cr[i] = uint8(i*5 + 1)
	}
	tiles := make([]*mpeg2.PixelBuf, g.NumTiles())
	for t2 := range tiles {
		r := g.Tile(t2)
		buf := mpeg2.NewPixelBuf(r.X0, r.Y0, r.W(), r.H())
		buf.CopyRect(ref, r.X0, r.Y0, r.W(), r.H())
		tiles[t2] = buf
	}
	got, err := g.Assemble(tiles)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Y {
		if got.Y[i] != ref.Y[i] {
			t.Fatalf("luma mismatch at %d", i)
		}
	}
	for i := range ref.Cb {
		if got.Cb[i] != ref.Cb[i] || got.Cr[i] != ref.Cr[i] {
			t.Fatalf("chroma mismatch at %d", i)
		}
	}
}

func TestAssembleMissingTile(t *testing.T) {
	g, _ := NewGeometry(64, 64, 2, 2, 0)
	tiles := make([]*mpeg2.PixelBuf, 4)
	if _, err := g.Assemble(tiles); err == nil {
		t.Error("nil tile accepted")
	}
	if _, err := g.Assemble(tiles[:2]); err == nil {
		t.Error("short tile list accepted")
	}
}

func TestMBSpan(t *testing.T) {
	g, _ := NewGeometry(128, 64, 2, 2, 0)
	x0, x1, y0, y1 := g.MBSpan(0)
	if x0 != 0 || x1 != 3 || y0 != 0 || y1 != 1 {
		t.Errorf("tile 0 span %d..%d, %d..%d", x0, x1, y0, y1)
	}
	x0, x1, y0, y1 = g.MBSpan(3)
	if x0 != 4 || x1 != 7 || y0 != 2 || y1 != 3 {
		t.Errorf("tile 3 span %d..%d, %d..%d", x0, x1, y0, y1)
	}
}
