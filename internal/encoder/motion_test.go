package encoder

import (
	"math"
	"math/rand"
	"testing"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/video"
)

// shifted builds a reference frame and a current frame that is the reference
// translated by (dx, dy) full pixels. The texture is smooth (two
// incommensurate sinusoids plus mild noise): hierarchical search — like any
// real estimator — relies on a correlated SAD surface, which pure noise does
// not provide.
func shifted(rng *rand.Rand, w, h, dx, dy int) (cur, ref *mpeg2.PixelBuf) {
	ref = mpeg2.NewPixelBuf(0, 0, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 128 + 60*math.Sin(0.21*float64(x)+0.13*float64(y)) +
				40*math.Sin(0.07*float64(x)-0.17*float64(y)) +
				float64(rng.Intn(7))
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			ref.Y[y*w+x] = uint8(v)
		}
	}
	rng.Read(ref.Cb)
	rng.Read(ref.Cr)
	cur = mpeg2.NewPixelBuf(0, 0, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx, sy := x+dx, y+dy
			if sx >= 0 && sx < w && sy >= 0 && sy < h {
				cur.Y[y*w+x] = ref.Y[sy*w+sx]
			}
		}
	}
	return cur, ref
}

// TestSearchFindsExactTranslation: for a pure translation the estimator must
// find the exact vector with SAD 0 (away from frame borders).
func TestSearchFindsExactTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range [][2]int{{0, 0}, {3, -2}, {-7, 5}, {12, 12}, {-15, -15}} {
		cur, ref := shifted(rng, 128, 128, d[0], d[1])
		est := newEstimator(cur, ref, 15, 3)
		mv, sad := est.search(48, 48, nil)
		if sad != 0 {
			t.Errorf("shift %v: sad %d", d, sad)
		}
		if int(mv[0]) != 2*d[0] || int(mv[1]) != 2*d[1] {
			t.Errorf("shift %v: found mv %v (half-pel), want (%d,%d)", d, mv, 2*d[0], 2*d[1])
		}
	}
}

// TestSearchRespectsFCodeBound: vectors never exceed the f_code range even
// when the true motion does.
func TestSearchRespectsFCodeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cur, ref := shifted(rng, 256, 64, 24, 0) // true motion 24 px
	est := newEstimator(cur, ref, 40, 2)     // f_code 2: |mv| < 16 px
	mv, _ := est.search(112, 32, nil)
	if mv[0] < -32 || mv[0] > 31 || mv[1] < -32 || mv[1] > 31 {
		t.Errorf("vector %v outside f_code 2 range", mv)
	}
}

// TestSearchStaysInsidePicture: near borders the candidate clamping must
// keep every probed block inside the reference.
func TestSearchStaysInsidePicture(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cur, ref := shifted(rng, 64, 64, 0, 0)
	est := newEstimator(cur, ref, 15, 3)
	for _, pos := range [][2]int{{0, 0}, {48, 0}, {0, 48}, {48, 48}} {
		mv, _ := est.search(pos[0], pos[1], [][2]int32{{-60, -60}, {60, 60}})
		if !est.mvValid(pos[0], pos[1], mv) {
			t.Errorf("position %v: invalid vector %v", pos, mv)
		}
	}
}

// TestSadHalfMatchesPrediction: the estimator's half-sample SAD agrees with
// the real prediction path.
func TestSadHalfMatchesPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cur, ref := shifted(rng, 96, 96, 1, 1)
	for _, mv := range [][2]int32{{3, -5}, {1, 1}, {-1, 0}, {0, -1}} {
		var pY [256]uint8
		var pCb, pCr [64]uint8
		if err := mpeg2.PredictMacroblock(ref, 32, 32, mv, &pY, &pCb, &pCr); err != nil {
			t.Fatal(err)
		}
		var want int32
		for r := 0; r < 16; r++ {
			for c := 0; c < 16; c++ {
				d := int32(cur.Y[(32+r)*96+32+c]) - int32(pY[r*16+c])
				if d < 0 {
					d = -d
				}
				want += d
			}
		}
		got := sadHalf(cur, ref, 32, 32, mv[0], mv[1], 1<<30)
		if got != want {
			t.Errorf("mv %v: sadHalf %d, prediction-path SAD %d", mv, got, want)
		}
	}
}

func TestCustomMatricesRoundTrip(t *testing.T) {
	var intra, nonIntra [64]uint8
	for i := range intra {
		intra[i] = uint8(8 + i/2)
		nonIntra[i] = uint8(12 + i/4)
	}
	intra[0] = 8
	cfg := Config{Width: 96, Height: 64, GOPSize: 6, BSpacing: 3, InitialQScale: 6,
		IntraQMatrix: &intra, NonIntraQMatrix: &nonIntra}
	data, orig, _ := encodeScene(t, video.SceneFilm, cfg, 7)
	dec, err := mpeg2.NewDecoder(data)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Seq().CustomIntraQ || !dec.Seq().CustomNonIntraQ {
		t.Fatal("custom matrices not signalled")
	}
	if dec.Seq().IntraQ != intra || dec.Seq().NonIntraQ != nonIntra {
		t.Fatal("matrices did not survive the bitstream")
	}
	pics, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pics {
		if psnr, _ := video.PSNR(orig[i], p.Buf); psnr < 22 {
			t.Errorf("frame %d PSNR %.1f with custom matrices", i, psnr)
		}
	}
}
