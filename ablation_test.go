package tiledwall

import (
	"fmt"
	"testing"

	"tiledwall/internal/encoder"
	"tiledwall/internal/experiments"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/system"
	"tiledwall/internal/video"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: projector
// overlap replication, SPH overhead vs tile count, dynamic vs round-robin
// picture assignment, and the encoder's optional coding tools.

// BenchmarkAblationOverlap measures the sub-picture replication cost of
// projector overlap (macroblocks in the blend band go to multiple tiles).
func BenchmarkAblationOverlap(b *testing.B) {
	data, _, err := experiments.Stream(8, experiments.Options{Frames: 24, Scale: 2}, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, ov := range []int{0, 16, 48} {
		ov := ov
		b.Run(fmt.Sprintf("overlap%d", ov), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: 1, M: 2, N: 2, Overlap: ov})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					sp := res.Splitters[0]
					b.ReportMetric(float64(sp.SPBytes)/float64(sp.InputBytes), "SPexpansion")
					b.ReportMetric(res.Modeled().FPS(), "fps")
				}
			}
		})
	}
}

// BenchmarkAblationSPHOverhead: the SPH cost per picture grows with tile
// count (more partial slices); the expansion ratio shrinks with resolution.
func BenchmarkAblationSPHOverhead(b *testing.B) {
	data, _, err := experiments.Stream(8, experiments.Options{Frames: 24, Scale: 2}, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range [][2]int{{1, 1}, {2, 2}, {4, 4}} {
		c := c
		b.Run(fmt.Sprintf("%dx%d", c[0], c[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: 1, M: c[0], N: c[1]})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					sp := res.Splitters[0]
					b.ReportMetric(float64(sp.SPBytes)/float64(sp.InputBytes), "SPexpansion")
				}
			}
		})
	}
}

// BenchmarkAblationDynamicBalance compares round-robin and credit-based
// picture assignment (paper §6 future work) on flyby content whose pictures
// vary strongly in cost.
func BenchmarkAblationDynamicBalance(b *testing.B) {
	data, _, err := experiments.Stream(13, experiments.Options{Frames: 24, Scale: 4}, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, dyn := range []bool{false, true} {
		dyn := dyn
		name := "roundrobin"
		if dyn {
			name = "dynamic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: 3, M: 2, N: 2, DynamicBalance: dyn})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.Modeled().FPS(), "fps")
					// Imbalance: busiest / lightest splitter CPU.
					var lo, hi float64
					for j, sp := range res.Splitters {
						v := sp.Breakdown.Busy().Seconds()
						if j == 0 || v < lo {
							lo = v
						}
						if v > hi {
							hi = v
						}
					}
					if lo > 0 {
						b.ReportMetric(hi/lo, "splitterImbalance")
					}
				}
			}
		})
	}
}

// BenchmarkAblationCodingTools measures the bit-rate effect of the encoder's
// optional tools (intra VLC table B-15, alternate scan, nonlinear quantiser,
// adaptive quantisation) on the same content.
func BenchmarkAblationCodingTools(b *testing.B) {
	const w, h, frames = 320, 192, 12
	src := video.NewSource(video.SceneFilm, w, h, 3)
	var srcFrames []*mpeg2.PixelBuf
	for i := 0; i < frames; i++ {
		srcFrames = append(srcFrames, src.Frame(i))
	}
	variants := []struct {
		name string
		mod  func(*encoder.Config)
	}{
		{"baseline", func(c *encoder.Config) {}},
		{"intra_vlc1", func(c *encoder.Config) { c.IntraVLCFormat = true }},
		{"alt_scan", func(c *encoder.Config) { c.AlternateScan = true }},
		{"nonlinear_q", func(c *encoder.Config) { c.QScaleType = true }},
		{"adaptive_q", func(c *encoder.Config) { c.AdaptiveQuant = true }},
		{"closed_gop", func(c *encoder.Config) { c.ClosedGOP = true }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := encoder.Config{Width: w, Height: h, GOPSize: 12, BSpacing: 3, InitialQScale: 8}
				v.mod(&cfg)
				data, err := encoder.EncodeFrames(cfg, srcFrames)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(len(data)*8)/float64(frames*w*h), "bpp")
					// Quality check rides along: decode and PSNR.
					dec, err := mpeg2.NewDecoder(data)
					if err != nil {
						b.Fatal(err)
					}
					pics, err := dec.DecodeAll()
					if err != nil {
						b.Fatal(err)
					}
					p, _ := video.PSNR(srcFrames[0], pics[0].Buf)
					b.ReportMetric(p, "psnr_dB")
				}
			}
		})
	}
}

// BenchmarkAblationMEIVolume reports how much reference data crosses tile
// boundaries as tiles shrink — the effect behind the sub-linear acceleration
// of Figure 6.
func BenchmarkAblationMEIVolume(b *testing.B) {
	data, _, err := experiments.Stream(8, experiments.Options{Frames: 24, Scale: 2}, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range [][2]int{{2, 1}, {2, 2}, {4, 2}, {4, 4}} {
		c := c
		b.Run(fmt.Sprintf("%dx%d", c[0], c[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: 1, M: c[0], N: c[1]})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					var inter int64
					for _, x := range res.DecoderNodeIDs {
						for _, y := range res.DecoderNodeIDs {
							inter += res.PairBytes(x, y)
						}
					}
					pics := float64(res.Throughput.Pictures)
					b.ReportMetric(float64(inter)/pics/1024, "exchKB/pic")
				}
			}
		})
	}
}

// BenchmarkAblationMEIBatching compares one-bundle-per-peer exchange (the
// paper's design) against one message per macroblock: per-message overhead
// was what made GM-era batching matter.
func BenchmarkAblationMEIBatching(b *testing.B) {
	data, _, err := experiments.Stream(8, experiments.Options{Frames: 24, Scale: 2}, false)
	if err != nil {
		b.Fatal(err)
	}
	for _, unbatched := range []bool{false, true} {
		unbatched := unbatched
		name := "batched"
		if unbatched {
			name = "perMacroblock"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := system.Run(data, system.Config{K: 1, M: 4, N: 4, UnbatchedExchange: unbatched})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					var msgs, bytes int64
					for _, id := range res.DecoderNodeIDs {
						msgs += res.NodeStats[id].MsgsSent
						bytes += res.NodeStats[id].BytesSent
					}
					pics := float64(res.Throughput.Pictures)
					b.ReportMetric(float64(msgs)/pics, "decMsgs/pic")
					b.ReportMetric(float64(bytes)/pics/1024, "decKB/pic")
				}
			}
		})
	}
}
