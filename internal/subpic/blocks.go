package subpic

import (
	"encoding/binary"
	"fmt"

	"tiledwall/internal/mpeg2"
)

// BlockBundle is the payload of one decoder-to-decoder macroblock exchange
// message: every reference macroblock one decoder owes another for one
// picture, batched into a single message (executing a picture's MEI SEND
// list produces one bundle per peer).
type BlockBundle struct {
	PicIndex int32
	Cells    []BlockCell
	// Pixels holds len(Cells) serialised macroblocks (mpeg2.MacroblockBytes
	// each), in cell order.
	Pixels []byte
}

// BlockCell identifies one exchanged macroblock.
type BlockCell struct {
	Ref      RefSel
	MBX, MBY uint16
}

// WireSize returns the exact number of bytes Marshal/AppendTo produce.
func (b *BlockBundle) WireSize() int {
	return 8 + len(b.Cells)*6 + len(b.Pixels)
}

// Marshal serialises the bundle.
func (b *BlockBundle) Marshal() []byte {
	return b.AppendTo(make([]byte, 0, b.WireSize()))
}

// AppendTo serialises the bundle onto out and returns the extended slice.
// With cap(out)-len(out) >= WireSize() it performs no allocation.
func (b *BlockBundle) AppendTo(out []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(b.PicIndex))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Cells)))
	for _, c := range b.Cells {
		out = append(out, byte(c.Ref), 0)
		out = binary.LittleEndian.AppendUint16(out, c.MBX)
		out = binary.LittleEndian.AppendUint16(out, c.MBY)
	}
	out = append(out, b.Pixels...)
	return out
}

// UnmarshalBlocks parses a bundle.
func UnmarshalBlocks(data []byte) (*BlockBundle, error) {
	b := &BlockBundle{}
	if err := UnmarshalBlocksInto(b, data); err != nil {
		return nil, err
	}
	return b, nil
}

// UnmarshalBlocksInto parses a bundle into b, reusing its Cells storage.
// Pixels aliases data — the bundle is valid only as long as data is.
func UnmarshalBlocksInto(b *BlockBundle, data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("subpic: truncated block bundle")
	}
	b.PicIndex = int32(binary.LittleEndian.Uint32(data))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	if n < 0 || len(data) < n*6 {
		return fmt.Errorf("subpic: block bundle cell list truncated")
	}
	if cap(b.Cells) >= n {
		b.Cells = b.Cells[:n]
	} else {
		b.Cells = make([]BlockCell, n)
	}
	for i := range b.Cells {
		b.Cells[i] = BlockCell{
			Ref: RefSel(data[0]),
			MBX: binary.LittleEndian.Uint16(data[2:]),
			MBY: binary.LittleEndian.Uint16(data[4:]),
		}
		data = data[6:]
	}
	if len(data) != n*mpeg2.MacroblockBytes {
		return fmt.Errorf("subpic: block bundle pixel payload %d bytes, want %d", len(data), n*mpeg2.MacroblockBytes)
	}
	b.Pixels = data
	return nil
}
