package service

import (
	"fmt"
	"time"

	"tiledwall/internal/cluster"
	"tiledwall/internal/metrics"
	"tiledwall/internal/mpeg2"
	"tiledwall/internal/splitter"
	"tiledwall/internal/subpic"
)

// picTypeOf peeks a picture unit's coding type without parsing: the unit
// starts with the picture start code (00 00 01 00), then 10 bits of
// temporal_reference and 3 bits of picture_coding_type — the type therefore
// sits in bits 5..3 of byte 5. Trick play and subscription activation key
// off this peek so dropped pictures never reach the splitters.
func picTypeOf(unit []byte) mpeg2.PictureType {
	if len(unit) < 6 {
		return 0
	}
	return mpeg2.PictureType((unit[5] >> 3) & 7)
}

// applySubscribe stages a session's subscription change (root goroutine).
// The activation itself waits for the next I picture.
func applySubscribe(s *Session, payload []byte) {
	trick, tiles, err := splitter.ParseSubscribe(payload)
	if err != nil {
		return // validated at Subscribe; never happens in-process
	}
	s.pendTrick, s.pendSub = trick, tiles
	s.subPending = true
}

// trickDrops reports whether trick mode m drops pictures of type t.
func trickDrops(m splitter.TrickMode, t mpeg2.PictureType) bool {
	switch m {
	case splitter.TrickIOnly:
		return t != mpeg2.PictureI
	case splitter.TrickDropB:
		return t == mpeg2.PictureB
	}
	return false
}

// activateSub promotes a pending subscription at an I-picture boundary and
// logs the activation against the picture index the I will ship with.
func activateSub(s *Session) (changed bool) {
	if !s.subPending {
		return false
	}
	s.subPending = false
	s.rootSub, s.rootTrick = s.pendSub, s.pendTrick
	s.subEvents = append(s.subEvents, SubscriptionEvent{
		Picture: s.shippedPics,
		Tiles:   s.rootSub,
		Trick:   s.rootTrick,
	})
	return true
}

// subControlPayload encodes a session's active subscription for the
// splitter broadcast.
func subControlPayload(s *Session) []byte {
	return splitter.AppendSubscribe(nil, s.rootTrick, s.rootSub)
}

// hasSubState reports whether the session deviates from the defaults (used
// to skip the respawn re-broadcast for ordinary sessions).
func hasSubState(s *Session) bool {
	return !s.rootSub.Full() || s.rootTrick != splitter.TrickNone || s.subPending
}

// runRoot is the resident root: it serialises every session's pictures into
// one global order on the batch credit protocol, so the ANID/NSID chain —
// and its deadlock-freedom — is exactly the single-stream pipeline's. The
// session id is routing state only.
func (w *Wall) runRoot() error {
	if w.cfg.K == 0 {
		return w.runRootCombined()
	}
	port := w.tr.Port(0)
	k := w.cfg.K
	rv := w.rv
	// drainTarget: one drain ack per splitter and per decoder closes a
	// session. By sender FIFO every data ack precedes its sender's drain ack,
	// so when the count is met no stale ack for the session remains.
	drainTarget := k + len(w.decoderIDs)
	byID := map[int]*Session{}

	credits := make([]int, k)
	nodeIdx := make(map[int]int, k)
	for i, id := range w.splitterIDs {
		credits[i] = 2
		nodeIdx[id] = i
	}
	credit := func(i int) {
		if credits[i] < 2 {
			credits[i]++
		}
	}
	onAck := func(m *cluster.Message) {
		if m.Seq == cluster.DrainAckSeq {
			w.drainAck(byID, m, drainTarget)
			return
		}
		if rv != nil && m.Seq == cluster.SessionFailSeq {
			// A splitter declared this session's stream undecodable: fail it
			// alone, keep the wall running.
			w.failSession(byID, port, m.Session, string(m.Payload))
			return
		}
		credit(nodeIdx[m.From])
		if rv != nil {
			rv.picRet.Ack(m.Session, nodeIdx[m.From], m.Seq)
		}
		// A splitter's receipt ack frees one of the session's in-flight slots.
		if s := byID[m.Session]; s != nil {
			s.releaseToken()
		}
	}
	// takeAck waits for a splitter ack; under recovery the wait is bounded
	// by the picture deadline — a dead splitter's receipt ack never comes —
	// after which the assignee is granted synthetic credit, and the oldest
	// retained (unacked) picture's feed token is released so no feeder hangs
	// on a dead node.
	takeAck := func(a int) error {
		if rv != nil {
			m, timedOut := port.RecvTimeout(cluster.MsgAck, rv.cfg.PictureDeadline)
			if timedOut {
				rv.rec.AddAckTimeout()
				credit(a)
				if sess, ok := rv.picRet.OldestSession(a); ok {
					if s := byID[sess]; s != nil {
						s.releaseToken()
					}
				}
				return nil
			}
			if m == nil {
				return fmt.Errorf("service: root aborted while waiting for splitter ack")
			}
			onAck(m)
			return nil
		}
		m := port.Recv(cluster.MsgAck)
		if m == nil {
			return fmt.Errorf("service: root aborted while waiting for splitter ack")
		}
		onAck(m)
		return nil
	}
	rr := 0
	choose := func() int {
		if !w.cfg.DynamicBalance {
			c := rr
			rr = (rr + 1) % k
			return c
		}
		best := rr
		for off := 0; off < k; off++ {
			i := (rr + off) % k
			if credits[i] > credits[best] {
				best = i
			}
		}
		rr = (best + 1) % k
		return best
	}

	// The assignee of the next picture is fixed before the current one ships
	// (NSID), and survives session boundaries: the global picture order does
	// not restart per stream.
	a := choose()
	shipped := false
	// release returns a dropped picture payload's reference to the slab pool
	// (pictures the root drops never reach a consumer).
	release := func(payload []byte) {
		if w.cfg.Pooled {
			cluster.PutSlab(payload)
		}
	}
	emit := func(it workItem) error {
		s := it.sess
		if rv != nil && s.failCause() != nil {
			s.releaseToken() // failed in isolation; drop queued pictures
			release(it.payload)
			return nil
		}
		pt := picTypeOf(it.payload)
		if pt == mpeg2.PictureI && activateSub(s) {
			// Broadcast the new subscription to every splitter immediately
			// before the activating I picture; per-sender FIFO makes every
			// splitter switch at the same picture boundary. Control-only: no
			// ack, no credit, no retention (respawn re-broadcasts instead).
			payload := subControlPayload(s)
			for _, id := range w.splitterIDs {
				port.Send(id, &cluster.Message{
					Kind:    cluster.MsgPicture,
					Flags:   cluster.FlagSubscribe,
					Session: s.id,
					Payload: payload,
				})
			}
		}
		if trickDrops(s.rootTrick, pt) {
			// Trick play drops the picture at the root: it never reaches a
			// splitter, costs no credit, and frees its feed slot at once.
			s.droppedPics++
			s.releaseToken()
			release(it.payload)
			return nil
		}
		// Shipped pictures are re-indexed densely so the downstream protocol
		// (per-session Seq, decoder index checks, the final's total) never
		// sees gaps from trick-play drops.
		sIdx := s.shippedPics
		s.shippedPics++
		t0 := time.Now()
		for credits[a] == 0 {
			if err := takeAck(a); err != nil {
				return err
			}
		}
		s.rootRes.WaitTime += time.Since(t0)
		// Drain any further acks without blocking so Dynamic sees fresh
		// credit counts.
		for {
			m, ok := port.TryRecv(cluster.MsgAck)
			if !ok {
				break
			}
			onAck(m)
		}
		credits[a]--
		next := choose()

		t0 = time.Now()
		var flags uint8
		if !shipped {
			// Only the wall's globally first picture exempts its splitter
			// from the decoder-ack gate (the batch "very first picture").
			flags = cluster.FlagFirstPicture
			shipped = true
		}
		if rv != nil {
			// Retain until the assignee acks receipt; a respawned splitter
			// gets everything its predecessor consumed without finishing.
			rv.picRet.Retain(s.id, a, sIdx, w.splitterIDs[next], flags, it.payload)
		}
		port.Send(w.splitterIDs[a], &cluster.Message{
			Kind:    cluster.MsgPicture,
			Seq:     sIdx, // per-session shipped-picture index (dense)
			Tag:     w.splitterIDs[next],
			Flags:   flags,
			Session: s.id,
			Payload: it.payload,
		})
		s.rootRes.SendTime += time.Since(t0)
		a = next
		return nil
	}

	var respawn chan int // nil (never fires) without recovery
	if rv != nil {
		respawn = rv.respawn
	}
	for {
		select {
		case m := <-port.Queue(cluster.MsgAck):
			onAck(m)
		case idx := <-respawn:
			// A splitter respawned: first restore every live session's
			// subscription/trick state (the predecessor's copy died with it;
			// a fresh splitter defaults to full subscription), then replay its
			// retained pictures — every session's, in original send order —
			// with FlagReplay so the new incarnation deduplicates against its
			// surviving queue and the decoders never double-ack.
			for _, s := range byID {
				if !hasSubState(s) {
					continue
				}
				port.Send(w.splitterIDs[idx], &cluster.Message{
					Kind:    cluster.MsgPicture,
					Flags:   cluster.FlagSubscribe,
					Session: s.id,
					Payload: subControlPayload(s),
				})
			}
			for _, p := range rv.picRet.PendingSplitter(idx) {
				rv.rec.AddReplayed(1)
				if w.cfg.Pooled {
					// Each replay delivery shares the retained bytes and the
					// consumer releases per delivery, so every send acquires
					// its own slab reference (nil Final payloads are no-ops).
					cluster.SlabRef(p.Payload)
				}
				port.Send(w.splitterIDs[idx], &cluster.Message{
					Kind:    cluster.MsgPicture,
					Seq:     p.Seq,
					Tag:     p.Tag,
					Flags:   (p.Flags &^ cluster.FlagFirstPicture) | cluster.FlagReplay,
					Session: p.Session,
					Payload: p.Payload,
				})
			}
		case it := <-w.work:
			switch it.kind {
			case workShutdown:
				w.broadcastShutdown(port)
				return nil
			case workOpen:
				byID[it.sess.id] = it.sess
				for _, id := range w.splitterIDs {
					port.Send(id, &cluster.Message{
						Kind:    cluster.MsgPicture,
						Flags:   cluster.FlagSessionOpen,
						Session: it.sess.id,
						Payload: it.payload,
					})
				}
			case workPicture:
				w.loadBytes.Add(-int64(len(it.payload)))
				if err := emit(it); err != nil {
					return err
				}
			case workSubscribe:
				applySubscribe(it.sess, it.payload)
			case workFinal:
				// The total counts shipped pictures, not fed ones: trick-play
				// drops must not make decoders wait for pictures that never
				// existed downstream.
				total := it.sess.shippedPics
				for i, id := range w.splitterIDs {
					if rv != nil {
						// Finals are retained too: a splitter that dies
						// between receiving and forwarding one would
						// otherwise hang the session's drain.
						rv.picRet.Retain(it.sess.id, i, -1, total, cluster.FlagSessionFinal, nil)
					}
					port.Send(id, &cluster.Message{
						Kind:    cluster.MsgPicture,
						Seq:     -1,
						Tag:     total, // session shipped-picture total
						Flags:   cluster.FlagSessionFinal,
						Session: it.sess.id,
					})
				}
			}
		case <-w.tr.Done():
			return w.tr.AbortCause()
		}
	}
}

// drainAck counts one node's session-drained notification; the last one
// releases the session's waiter.
func (w *Wall) drainAck(byID map[int]*Session, m *cluster.Message, target int) {
	s := byID[m.Session]
	if s == nil {
		return
	}
	s.drainAcks++
	if s.drainAcks == target {
		delete(byID, m.Session)
		close(s.drained)
	}
}

// broadcastShutdown tells every node server to exit cleanly. Sessions are all
// drained by the time Close submits the shutdown item, so every server is
// idle in its receive loop.
func (w *Wall) broadcastShutdown(port cluster.Port) {
	for _, id := range w.splitterIDs {
		port.Send(id, &cluster.Message{Kind: cluster.MsgPicture, Flags: cluster.FlagShutdown})
	}
	for _, id := range w.decoderIDs {
		port.Send(id, &cluster.Message{Kind: cluster.MsgSubPicture, Flags: cluster.FlagShutdown})
	}
}

// combinedSession is a session's splitter-side state on a one-level wall,
// where the root is also the (single) macroblock splitter.
type combinedSession struct {
	ms  *splitter.MBSplitter
	res *splitter.SecondResult
	roi splitter.ROIScratch
}

func (cs *combinedSession) marshal(sp *subpic.SubPicture, pooled bool) []byte {
	t0 := time.Now()
	var payload []byte
	if pooled {
		payload = sp.AppendTo(cluster.GetSlab(sp.WireSize()))
	} else {
		payload = sp.Marshal()
	}
	cs.res.Split.Add(metrics.SplitSerialize, time.Since(t0))
	return payload
}

// runRootCombined is the K=0 root: the combined splitter of the batch
// one-level pipeline, made session-aware. Decoder go-ahead acks arriving
// between pictures are banked for the next gate.
func (w *Wall) runRootCombined() error {
	port := w.tr.Port(0)
	nd := len(w.decoderIDs)
	rv := w.rv
	byID := map[int]*Session{}
	sessions := map[int]*combinedSession{}
	banked := 0
	shipped := false

	onAck := func(m *cluster.Message) {
		if m.Seq == cluster.DrainAckSeq {
			w.drainAck(byID, m, nd)
			return
		}
		banked++
	}
	gate := func(b *metrics.Breakdown) error {
		aborted := false
		b.Timed(metrics.PhaseWaitMB, func() {
			for banked < nd {
				if rv != nil {
					// A dead decoder's go-ahead never comes: bound the wait
					// and move on — the respawned decoder catches up through
					// its queue and gap concealment.
					m, timedOut := port.RecvTimeout(cluster.MsgAck, rv.cfg.PictureDeadline)
					if timedOut {
						rv.rec.AddAckTimeout()
						banked = nd
						break
					}
					if m == nil {
						aborted = true
						return
					}
					onAck(m)
					continue
				}
				m := port.Recv(cluster.MsgAck)
				if m == nil {
					aborted = true
					return
				}
				onAck(m)
			}
		})
		if aborted {
			return fmt.Errorf("service: fabric aborted while waiting for decoder acks")
		}
		banked -= nd
		return nil
	}
	// failCombined fails one session in isolation: the feeder gets a typed
	// error, and a final sized to what already shipped lets every decoder
	// finish and drop the session's state.
	failCombined := func(s *Session, cs *combinedSession, shippedPics int, cause error) {
		delete(byID, s.id)
		delete(sessions, s.id)
		s.fail(fmt.Errorf("%w: session %q: %v", ErrSessionFailed, s.name, cause))
		for _, id := range w.decoderIDs {
			sp := &subpic.SubPicture{Final: true}
			sp.Pic.Index = int32(shippedPics)
			port.Send(id, &cluster.Message{
				Kind:    cluster.MsgSubPicture,
				Seq:     -1,
				Tag:     port.ID(),
				Flags:   cluster.FlagSessionFinal,
				Session: s.id,
				Payload: cs.marshal(sp, w.cfg.Pooled),
			})
		}
		cs.ms.Close()
	}

	for {
		select {
		case m := <-port.Queue(cluster.MsgAck):
			onAck(m)
		case it := <-w.work:
			switch it.kind {
			case workShutdown:
				for _, cs := range sessions {
					cs.ms.Close()
				}
				w.broadcastShutdown(port)
				return nil
			case workOpen:
				s := it.sess
				byID[s.id] = s
				sessions[s.id] = &combinedSession{
					ms: splitter.NewMBSplitterOpts(s.seq, s.geo, splitter.SplitOptions{
						Workers: w.cfg.SplitWorkers,
						Reuse:   w.cfg.Pooled,
					}),
					res: &splitter.SecondResult{},
				}
				for _, id := range w.decoderIDs {
					port.Send(id, &cluster.Message{
						Kind:    cluster.MsgSubPicture,
						Flags:   cluster.FlagSessionOpen,
						Session: s.id,
						Payload: it.payload,
					})
				}
			case workSubscribe:
				applySubscribe(it.sess, it.payload)
			case workPicture:
				w.loadBytes.Add(-int64(len(it.payload)))
				s := it.sess
				cs := sessions[s.id]
				if cs == nil {
					s.releaseToken() // session already failed in isolation
					if w.cfg.Pooled {
						cluster.PutSlab(it.payload)
					}
					continue
				}
				// The root is the (single) splitter here, so subscription
				// activation needs no broadcast: the state lives on s and the
				// ROI rewrite happens right after the split below.
				pt := picTypeOf(it.payload)
				if pt == mpeg2.PictureI {
					activateSub(s)
				}
				if trickDrops(s.rootTrick, pt) {
					s.droppedPics++
					s.releaseToken()
					if w.cfg.Pooled {
						cluster.PutSlab(it.payload)
					}
					continue
				}
				sIdx := s.shippedPics
				b := &cs.res.Breakdown
				cs.res.InputBytes += int64(len(it.payload))
				var sps []*subpic.SubPicture
				var err error
				b.Timed(metrics.PhaseWork, func() { sps, err = cs.ms.Split(it.payload, sIdx) })
				if err != nil {
					if rv != nil {
						failCombined(s, cs, sIdx, err)
						s.releaseToken()
						if w.cfg.Pooled {
							cluster.PutSlab(it.payload)
						}
						continue
					}
					return err
				}
				if shipped {
					if err := gate(b); err != nil {
						return err
					}
				}
				shipped = true
				ship, nSkipped := cs.roi.Apply(sps, s.rootSub, s.rootTrick == splitter.TrickIOnly)
				cs.res.SkippedSubPics += int64(nSkipped)
				b.Timed(metrics.PhaseServe, func() {
					for t := 0; t < nd; t++ {
						payload := cs.marshal(ship[t], w.cfg.Pooled)
						cs.res.SPBytes += int64(len(payload))
						port.Send(w.decoderIDs[t], &cluster.Message{
							Kind:    cluster.MsgSubPicture,
							Seq:     sIdx,
							Tag:     port.ID(),
							Session: s.id,
							Payload: payload,
						})
					}
				})
				s.shippedPics = sIdx + 1
				cs.res.Pictures++
				b.Pictures++
				s.releaseToken()
				// The sub-pictures aliased the picture payload until the
				// serialisation above; there is no retainer on a one-level
				// wall, so the root's release is the last.
				if w.cfg.Pooled {
					cluster.PutSlab(it.payload)
				}
			case workFinal:
				s := it.sess
				cs := sessions[s.id]
				if cs == nil {
					continue // session already failed in isolation
				}
				for _, id := range w.decoderIDs {
					sp := &subpic.SubPicture{Final: true}
					sp.Pic.Index = int32(s.shippedPics)
					port.Send(id, &cluster.Message{
						Kind:    cluster.MsgSubPicture,
						Seq:     -1,
						Tag:     port.ID(),
						Flags:   cluster.FlagSessionFinal,
						Session: s.id,
						Payload: cs.marshal(sp, w.cfg.Pooled),
					})
				}
				cs.res.FoldSplit(cs.ms)
				cs.ms.Close()
				delete(sessions, s.id)
				// Published before the last drain ack can close s.drained: this
				// goroutine processes that ack only after finishing here.
				s.splitters[0] = cs.res
			}
		case <-w.tr.Done():
			return w.tr.AbortCause()
		}
	}
}
