package conformance

import (
	"fmt"
	"sync"

	"tiledwall/internal/mpeg2"
	"tiledwall/internal/service"
	"tiledwall/internal/system"
	"tiledwall/internal/video"
	"tiledwall/internal/wall"
)

// This file is the subscription (ROI) and trick-play conformance oracle.
//
// The subscription axis: a session that watches only a subset of the wall
// must still show every subscribed tile byte-identically to the full serial
// decode — the halo closure (DESIGN.md §15) may skip work, never change
// pixels. RunROIMatrix drives every configuration through a partial
// subscription with a mid-session re-subscription, collects per-tile output
// through the OnTileFrame hook (a partial session emits no assembled wall
// frames), and compares each emitted tile frame against the serial
// reference cropped to that tile, using the session's own activation log to
// know which tiles owe which pictures.
//
// The trick-play axis: drop-B fast forward must emit exactly the serial
// decode of the I/P subset (B pictures never feed references, so anchors
// decode identically without them), and I-only scrubbing exactly the serial
// I pictures.

// ROIResult is the outcome of one configuration × transport in RunROIMatrix.
type ROIResult struct {
	Config    system.Config
	Transport string
	// Tiles is the number of subscribed tiles in the final subscription, and
	// SkippedSubPics what the splitters skipped — evidence the partial path
	// actually engaged (zero skip markers on a multi-picture partial
	// subscription would mean the full path ran instead).
	Tiles          int
	SkippedSubPics int64
	Err            error
}

// Name renders the configuration in the matrix's 1-k-(m,n) notation.
func (r ROIResult) Name() string {
	return fmt.Sprintf("%s/%s", MatrixResult{Config: r.Config}.Name(), r.Transport)
}

// Failure returns a descriptive error when the axis failed.
func (r ROIResult) Failure() error {
	if r.Err != nil {
		return fmt.Errorf("%s: %w", r.Name(), r.Err)
	}
	return nil
}

// tileFrame is one emission observed through OnTileFrame: the decode-order
// picture index it was emitted for, and the pixels.
type tileFrame struct {
	pic int
	buf *mpeg2.PixelBuf
}

// tileTap collects per-tile emissions; decoders emit concurrently.
type tileTap struct {
	mu   sync.Mutex
	emit [][]tileFrame
}

func newTileTap(nt int) *tileTap { return &tileTap{emit: make([][]tileFrame, nt)} }

func (tt *tileTap) hook(_, displayIdx, tile int, buf *mpeg2.PixelBuf) {
	tt.mu.Lock()
	tt.emit[tile] = append(tt.emit[tile], tileFrame{pic: displayIdx, buf: buf})
	tt.mu.Unlock()
}

// randomTileSet draws a non-empty proper subset of nt tiles.
func randomTileSet(rng *xorshift64, nt int) wall.TileSet {
	ts := wall.NewTileSet(nt)
	n := 0
	for t := 0; t < nt; t++ {
		if rng.intn(2) == 0 {
			ts.Add(t)
			n++
		}
	}
	if n == 0 {
		ts.Add(rng.intn(nt))
		n = nt // prevent the all-cleared fixup below from re-entering
	}
	if n == nt && nt > 1 {
		// A proper subset exercises the skip path; re-draw one tile out.
		ts = wall.NewTileSet(nt)
		skip := rng.intn(nt)
		for t := 0; t < nt; t++ {
			if t != skip {
				ts.Add(t)
			}
		}
	}
	return ts
}

// liveAt resolves which tile set was active for decode-order picture pic,
// given the session's activation log (sorted by activation picture).
func liveAt(events []service.SubscriptionEvent, pic int) wall.TileSet {
	var cur wall.TileSet // zero value: full, the pre-activation default
	for _, ev := range events {
		if ev.Picture > pic {
			break
		}
		cur = ev.Tiles
	}
	return cur
}

// cropTile extracts a tile's rectangle from a full serial reference frame.
func cropTile(ref *mpeg2.PixelBuf, rect wall.Rect) *mpeg2.PixelBuf {
	out := mpeg2.NewPixelBuf(rect.X0, rect.Y0, rect.W(), rect.H())
	out.CopyRect(ref, rect.X0, rect.Y0, rect.W(), rect.H())
	return out
}

// runROISession plays one partially subscribed session with a mid-stream
// re-subscription and verifies every subscribed tile byte-for-byte.
func runROISession(stream []byte, cfg system.Config, ref []mpeg2.DecodedPicture, geo *wall.Geometry, rng *xorshift64) (ROIResult, error) {
	nt := cfg.M * cfg.N
	subA := randomTileSet(rng, nt)
	subB := randomTileSet(rng, nt)
	tap := newTileTap(nt)

	cfg.CollectFrames = false
	cfg.OnTileFrame = tap.hook
	res := ROIResult{Config: cfg, Transport: cfg.Transport}

	w, err := system.NewResidentWall(cfg)
	if err != nil {
		return res, err
	}
	defer w.Close()
	sess, err := w.Open("roi")
	if err != nil {
		return res, err
	}
	if err := sess.Subscribe(subA); err != nil {
		sess.Close()
		return res, err
	}
	// Feed in ragged chunks, re-subscribing somewhere in the middle so the
	// change lands between pictures and activates at a later I boundary.
	mid := len(stream) / 2
	chunk := 1024 + rng.intn(2048)
	for off := 0; off < len(stream); off += chunk {
		end := off + chunk
		if end > len(stream) {
			end = len(stream)
		}
		if off < mid && end >= mid {
			if err := sess.Subscribe(subB); err != nil {
				sess.Close()
				return res, err
			}
		}
		if err := sess.Feed(stream[off:end]); err != nil {
			sess.Close()
			return res, err
		}
	}
	sres, err := sess.Close()
	if err != nil {
		return res, err
	}
	res.Tiles = sres.SubscribedTiles
	res.SkippedSubPics = sres.SkippedSubPics

	if len(sres.Subscriptions) == 0 {
		res.Err = fmt.Errorf("no subscription activation recorded (subscribed before first picture)")
		return res, nil
	}
	// SkippedSubPics may legitimately be zero on one run: a stream without B
	// pictures skips nothing (anchors materialize everywhere), and a
	// large-motion stream on a small wall makes every unwatched tile a SEND
	// source for some live neighbour. Callers assert engagement in aggregate.

	// Expected emissions per tile: the serial display-order pictures during
	// which the tile was subscribed, each cropped to the tile rectangle.
	for t := 0; t < nt; t++ {
		rect := geo.Tile(t)
		got := tap.emit[t]
		gi := 0
		for _, rp := range ref {
			if !liveAt(sres.Subscriptions, rp.DecodeIndex).Has(t) {
				continue
			}
			if gi >= len(got) {
				res.Err = fmt.Errorf("tile %d: emitted %d frames, expected one for picture %d", t, len(got), rp.DecodeIndex)
				return res, nil
			}
			ef := got[gi]
			gi++
			if ef.pic != rp.DecodeIndex {
				res.Err = fmt.Errorf("tile %d: emission %d is picture %d, expected %d", t, gi-1, ef.pic, rp.DecodeIndex)
				return res, nil
			}
			if !video.Equal(cropTile(rp.Buf, rect), ef.buf) {
				res.Err = fmt.Errorf("tile %d: picture %d differs from serial decode", t, rp.DecodeIndex)
				return res, nil
			}
		}
		if gi != len(got) {
			res.Err = fmt.Errorf("tile %d: %d extra emissions beyond the %d subscribed pictures", t, len(got)-gi, gi)
			return res, nil
		}
	}
	return res, nil
}

// RunROIMatrix runs the subscription oracle: for every configuration, on
// both transports, a session subscribing a random proper tile subset — with
// a second random subset taking over mid-stream — must emit every subscribed
// tile byte-identically to the serial reference, no more, no less. The
// subsets are drawn from seed, so failures reproduce.
func RunROIMatrix(stream []byte, configs []system.Config, seed int64) ([]ROIResult, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, fmt.Errorf("conformance: serial parse: %w", err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("conformance: serial decode: %w", err)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16

	rng := newXorshift(seed)
	var out []ROIResult
	for _, cfg := range configs {
		geo, gerr := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
		if gerr != nil {
			return nil, fmt.Errorf("conformance: geometry for %s: %w", MatrixResult{Config: cfg}.Name(), gerr)
		}
		for _, transport := range []string{"fabric", "tcp"} {
			c := cfg
			c.Transport = transport
			r, err := runROISession(stream, c, ref, geo, rng)
			if err != nil {
				r.Err = err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// TrickResult is the outcome of one trick-play oracle run.
type TrickResult struct {
	Config    system.Config
	Mode      string
	Shipped   int
	Skipped   int
	Divergent *Divergence
	Err       error
}

// Failure returns a descriptive error when the axis failed.
func (r TrickResult) Failure() error {
	name := fmt.Sprintf("%s/%s", MatrixResult{Config: r.Config}.Name(), r.Mode)
	switch {
	case r.Err != nil:
		return fmt.Errorf("%s: %w", name, r.Err)
	case r.Divergent != nil:
		return fmt.Errorf("%s: %s", name, r.Divergent)
	}
	return nil
}

// RunTrickOracle verifies trick play against the serial decode of the same
// picture subset: drop-B must emit exactly the serial I/P frames (B pictures
// never feed references, so anchors are unchanged by their removal), I-only
// exactly the serial I frames. Dropped pictures must be counted, and the
// emitted frame count must match the shipped-picture total.
func RunTrickOracle(stream []byte, configs []system.Config) ([]TrickResult, error) {
	dec, err := mpeg2.NewDecoder(stream)
	if err != nil {
		return nil, fmt.Errorf("conformance: serial parse: %w", err)
	}
	ref, err := dec.DecodeAll()
	if err != nil {
		return nil, fmt.Errorf("conformance: serial decode: %w", err)
	}
	picW, picH := dec.Seq().MBWidth()*16, dec.Seq().MBHeight()*16

	modes := []struct {
		name string
		mode service.TrickMode
		keep func(mpeg2.PictureType) bool
	}{
		{"drop-b", service.TrickDropB, func(t mpeg2.PictureType) bool { return t != mpeg2.PictureB }},
		{"i-only", service.TrickIOnly, func(t mpeg2.PictureType) bool { return t == mpeg2.PictureI }},
	}

	var out []TrickResult
	for _, cfg := range configs {
		geo, gerr := wall.NewGeometry(picW, picH, cfg.M, cfg.N, cfg.Overlap)
		if gerr != nil {
			geo = nil
		}
		for _, m := range modes {
			c := cfg
			c.CollectFrames = true
			tr := TrickResult{Config: cfg, Mode: m.name}
			var want []mpeg2.DecodedPicture
			for _, rp := range ref {
				if m.keep(rp.Pic.PicType) {
					want = append(want, rp)
				}
			}
			frames, sres, err := playTrick(stream, c, m.mode)
			if err != nil {
				tr.Err = err
				out = append(out, tr)
				continue
			}
			tr.Shipped, tr.Skipped = sres.ShippedPictures, sres.SkippedPictures
			switch {
			case sres.ShippedPictures != len(want):
				tr.Err = fmt.Errorf("shipped %d pictures, serial subset has %d", sres.ShippedPictures, len(want))
			case sres.SkippedPictures != len(ref)-len(want):
				tr.Err = fmt.Errorf("skipped %d pictures, want %d", sres.SkippedPictures, len(ref)-len(want))
			default:
				tr.Divergent = Diff(want, frames, geo)
			}
			out = append(out, tr)
		}
	}
	return out, nil
}

// playTrick plays one full-subscription trick-play session and returns the
// assembled wall frames plus the session accounting.
func playTrick(stream []byte, cfg system.Config, mode service.TrickMode) ([]*mpeg2.PixelBuf, *service.SessionResult, error) {
	w, err := system.NewResidentWall(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer w.Close()
	sess, err := w.Open("trick")
	if err != nil {
		return nil, nil, err
	}
	if err := sess.SetTrickMode(mode); err != nil {
		sess.Close()
		return nil, nil, err
	}
	if err := sess.Feed(stream); err != nil {
		sess.Close()
		return nil, nil, err
	}
	sres, err := sess.Close()
	if err != nil {
		return nil, nil, err
	}
	return sres.Frames, sres, nil
}
